package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/eval"
	"github.com/crrlab/crr/internal/induction"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// StrategyNames is the fixed comparison order of the strategies experiment.
func StrategyNames() []string { return []string{"lattice", "growprune", "stability"} }

// StrategyRow is one (dataset, strategy) measurement of the induction
// comparison: discovered rule count, Line-13 fits, discovery wall time, and
// the rule set's RMSE on training and held-out rows.
type StrategyRow struct {
	Dataset  string `json:"dataset"`
	Strategy string `json:"strategy"`
	// TrainRows/TestRows size the interleaved even/odd split.
	TrainRows int `json:"train_rows"`
	TestRows  int `json:"test_rows"`
	Rules     int `json:"rules"`
	Trained   int `json:"models_trained"`
	// DiscoverMS is the discovery wall time in milliseconds.
	Wall       time.Duration `json:"-"`
	DiscoverMS float64       `json:"discover_ms"`
	// TrainRMSE/TestRMSE score the rule set (with its mean fallback for
	// uncovered tuples) on the two halves.
	TrainRMSE float64 `json:"train_rmse"`
	TestRMSE  float64 `json:"test_rmse"`
}

// StrategyCompare runs every induction strategy on the five evaluation
// datasets and scores the results: each dataset is split into interleaved
// even/odd halves (fair to the time-series generators, where a tail holdout
// would measure temporal extrapolation instead of rule quality), rules are
// discovered on the even half, and both halves are scored with
// internal/eval. The sequential engine is used throughout so every
// strategy's output is deterministic.
func StrategyCompare(ctx context.Context, scale float64) ([]StrategyRow, error) {
	var out []StrategyRow
	for _, spec := range hotPathSpecs() {
		n := scaled(2000, scale, 400)
		full := spec.Gen(n)
		train, test := interleave(full)
		preds := predicate.Generate(train, spec.CondAttrs, predicate.GeneratorConfig{
			Kind: predicate.Binary, Size: 64,
		})
		for _, name := range StrategyNames() {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			strat, err := induction.Lookup(name)
			if err != nil {
				return nil, err
			}
			cfg := core.DiscoverConfig{
				XAttrs:   spec.XAttrs,
				YAttr:    spec.YAttr,
				RhoM:     spec.RhoM,
				Preds:    preds,
				Trainer:  regress.LinearTrainer{},
				Strategy: strat,
			}
			var res *core.DiscoverResult
			wall := eval.Timed(func() {
				res, err = core.Discover(ctx, train, core.WithConfig(cfg))
			})
			if err != nil {
				return nil, fmt.Errorf("strategies %s/%s: %w", spec.Name, name, err)
			}
			trainRMSE, _ := eval.Score(res.Rules, train, spec.YAttr, res.Rules.Fallback)
			testRMSE, _ := eval.Score(res.Rules, test, spec.YAttr, res.Rules.Fallback)
			out = append(out, StrategyRow{
				Dataset:    spec.Name,
				Strategy:   name,
				TrainRows:  train.Len(),
				TestRows:   test.Len(),
				Rules:      res.Rules.NumRules(),
				Trained:    res.Stats.ModelsTrained,
				Wall:       wall,
				DiscoverMS: float64(wall) / float64(time.Millisecond),
				TrainRMSE:  trainRMSE,
				TestRMSE:   testRMSE,
			})
		}
	}
	return out, nil
}

// interleave splits rel into its even-index and odd-index rows.
func interleave(rel *dataset.Relation) (train, test *dataset.Relation) {
	train = dataset.NewRelation(rel.Schema)
	test = dataset.NewRelation(rel.Schema)
	for i, tp := range rel.Tuples {
		if i%2 == 0 {
			train.Tuples = append(train.Tuples, tp)
		} else {
			test.Tuples = append(test.Tuples, tp)
		}
	}
	return train, test
}

// RenderStrategyRows writes the comparison as an aligned table, the output
// of crrbench -strategies.
func RenderStrategyRows(w io.Writer, rows []StrategyRow) error {
	t := eval.NewTable("[strategies] induction strategies: rule count / test RMSE / discovery latency",
		"dataset", "strategy", "train-rows", "#rules", "trained", "discover", "train-rmse", "test-rmse")
	for _, r := range rows {
		t.AddRowf(r.Dataset, r.Strategy, r.TrainRows, r.Rules, r.Trained, r.Wall,
			fmt.Sprintf("%.4g", r.TrainRMSE), fmt.Sprintf("%.4g", r.TestRMSE))
	}
	return t.Render(w)
}
