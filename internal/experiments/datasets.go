package experiments

import (
	"github.com/crrlab/crr/internal/dataset"
)

// Dataset descriptors bind each paper dataset to its generator, regression
// signature (X, Y) and condition attributes, so every experiment agrees on
// the setup.

// DatasetSpec describes one evaluation dataset.
type DatasetSpec struct {
	Name string
	// Gen builds the first n rows deterministically.
	Gen func(n int) *dataset.Relation
	// XAttrs/YAttr is the regression signature used throughout §VI.
	XAttrs []int
	YAttr  int
	// CondAttrs feed the predicate generator.
	CondAttrs []int
	// ExpertCuts are the domain-knowledge cut points for Table III.
	ExpertCuts map[int][]float64
	// RhoM is the per-dataset default bias matched to its value scale.
	RhoM float64
	// CompactTol is the Algorithm 2 model tolerance matched to the
	// dataset's slope-estimation noise (see core.CompactOptions.ModelTol).
	CompactTol float64
	// TimeSeries marks datasets where the time-series baselines apply.
	TimeSeries bool
}

// BirdMapSpec is the BirdMap stand-in: Latitude regressed on Date,
// conditions over Date and BirdID. Expert cuts are the true season
// boundaries of the generator (day-of-year 90/150/240/300 per year).
func BirdMapSpec() DatasetSpec {
	cuts := []float64{}
	for year := 0; year < 3; year++ {
		base := float64(year) * dataset.YearLength
		cuts = append(cuts, base+90, base+150, base+240, base+300)
	}
	return DatasetSpec{
		Name: "BirdMap",
		Gen: func(n int) *dataset.Relation {
			cfg := dataset.DefaultBirdMapConfig()
			cfg.Rows = n
			return dataset.GenerateBirdMap(cfg)
		},
		XAttrs:     []int{3}, // Date
		YAttr:      0,        // Latitude
		CondAttrs:  []int{3, 2},
		ExpertCuts: map[int][]float64{3: cuts},
		RhoM:       1.0,
		CompactTol: 0.01,
		TimeSeries: true,
	}
}

// AirQualitySpec regresses CO on Time with hour-of-day expert cuts.
func AirQualitySpec() DatasetSpec {
	cuts := []float64{}
	for day := 0; day < 14; day++ {
		base := float64(day) * 24
		cuts = append(cuts, base+6, base+12, base+18)
	}
	return DatasetSpec{
		Name: "AirQuality",
		Gen: func(n int) *dataset.Relation {
			cfg := dataset.DefaultAirQualityConfig()
			cfg.Rows = n
			return dataset.GenerateAirQuality(cfg)
		},
		XAttrs:     []int{0}, // Time
		YAttr:      1,        // CO
		CondAttrs:  []int{0},
		ExpertCuts: map[int][]float64{0: cuts},
		RhoM:       1.0,
		CompactTol: 0.05,
		TimeSeries: true,
	}
}

// ElectricitySpec regresses GlobalActivePower on Time.
func ElectricitySpec() DatasetSpec {
	return DatasetSpec{
		Name: "Electricity",
		Gen: func(n int) *dataset.Relation {
			cfg := dataset.DefaultElectricityConfig()
			cfg.Rows = n
			return dataset.GenerateElectricity(cfg)
		},
		XAttrs:     []int{0}, // Time
		YAttr:      1,        // GlobalActivePower
		CondAttrs:  []int{0},
		RhoM:       0.5,
		CompactTol: 0.01,
		TimeSeries: true,
	}
}

// TaxSpec regresses Tax on Salary with categorical conditions.
func TaxSpec() DatasetSpec {
	return DatasetSpec{
		Name: "Tax",
		Gen: func(n int) *dataset.Relation {
			cfg := dataset.DefaultTaxConfig()
			cfg.Rows = n
			return dataset.GenerateTax(cfg)
		},
		XAttrs:     []int{0},    // Salary
		YAttr:      4,           // Tax
		CondAttrs:  []int{1, 2}, // State, MaritalStatus
		RhoM:       60,          // tax dollars: salary ranges are 1e4–1e5
		CompactTol: 0.002,
		TimeSeries: false,
	}
}

// AbaloneSpec regresses Rings on Length with Sex conditions. The expert cut
// separates juveniles from adults at the generator's regime scale.
func AbaloneSpec() DatasetSpec {
	return DatasetSpec{
		Name: "Abalone",
		Gen: func(n int) *dataset.Relation {
			cfg := dataset.DefaultAbaloneConfig()
			cfg.Rows = n
			return dataset.GenerateAbalone(cfg)
		},
		XAttrs:     []int{1},    // Length
		YAttr:      8,           // Rings
		CondAttrs:  []int{0, 1}, // Sex, Length
		ExpertCuts: map[int][]float64{1: {0.35, 0.5}},
		RhoM:       0.5,
		CompactTol: 0.5,
		TimeSeries: false,
	}
}
