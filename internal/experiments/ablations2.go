package experiments

import (
	"context"
	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/eval"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// AblationFuse measures eager shared-rule fusion (DiscoverConfig.FuseShared):
// rule counts and evaluation time with the fusion applied during search
// versus rules emitted per part. Predictions are identical by construction;
// the fused set should be much smaller and no slower to evaluate.
func AblationFuse(ctx context.Context, scale float64) ([]Row, error) {
	var rows []Row
	for _, spec := range []DatasetSpec{BirdMapSpec(), ElectricitySpec()} {
		rel := spec.Gen(scaled(4000, scale, 800))
		train, test := splitInterleaved(rel, 5)
		for _, variant := range []struct {
			name string
			fuse bool
		}{
			{"fuse-on", true},
			{"fuse-off", false},
		} {
			m := crrFor(spec)
			m.DisplayName = variant.name
			m.FuseShared = variant.fuse
			m.Compact = false // isolate the in-search fusion effect
			row, err := runMethod(ctx, "ablation-fuse", spec.Name, m, train, test,
				spec.XAttrs, spec.YAttr, "variant", 0)
			if err != nil {
				return nil, err
			}
			row.Param = variant.name
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// AblationPrune measures the §VII post-pruning on an over-refined discovery:
// ρ_M below the noise floor fragments a dataset into many windows; pruning
// should merge statistically indistinguishable neighbors with little RMSE
// cost.
func AblationPrune(ctx context.Context, scale float64) ([]Row, error) {
	var rows []Row
	for _, spec := range []DatasetSpec{AirQualitySpec(), AbaloneSpec()} {
		rel := spec.Gen(scaled(3000, scale, 600))
		train, test := splitInterleaved(rel, 5)
		preds := predicate.Generate(train, spec.CondAttrs, predicate.GeneratorConfig{
			ExpertCuts: spec.ExpertCuts,
		})
		// Deliberately over-refine: a quarter of the dataset's ρ_M.
		res, err := core.Discover(ctx, train, core.WithConfig(core.DiscoverConfig{
			XAttrs:  spec.XAttrs,
			YAttr:   spec.YAttr,
			RhoM:    spec.RhoM / 4,
			Preds:   preds,
			Trainer: regress.LinearTrainer{},
		}))
		if err != nil {
			return nil, err
		}
		rmse0, eval0 := eval.Score(res.Rules, test, spec.YAttr, res.Rules.Fallback)
		rows = append(rows, Row{
			Experiment: "ablation-prune", Dataset: spec.Name,
			Method: "unpruned", Param: "variant",
			Eval: eval0, RMSE: rmse0, Rules: res.Rules.NumRules(),
		})
		var pruned *core.RuleSet
		pruneTime := eval.Timed(func() {
			var err2 error
			pruned, _, err2 = core.Prune(train, res.Rules, core.PruneOptions{})
			if err2 != nil {
				err = err2
			}
		})
		if err != nil {
			return nil, err
		}
		rmse1, eval1 := eval.Score(pruned, test, spec.YAttr, pruned.Fallback)
		rows = append(rows, Row{
			Experiment: "ablation-prune", Dataset: spec.Name,
			Method: "pruned", Param: "variant", Learn: pruneTime,
			Eval: eval1, RMSE: rmse1, Rules: pruned.NumRules(),
		})
	}
	return rows, nil
}
