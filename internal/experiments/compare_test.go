package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestHotPathCompareIdentical is the acceptance check of the hot path: on
// all five evaluation datasets, sequential discovery with the
// sufficient-statistics fast path must produce output structurally
// identical to the full-pass run (same rules, same order, weights within
// 1e-9), while actually exercising the fast path.
func TestHotPathCompareIdentical(t *testing.T) {
	rows, err := HotPathCompare(context.Background(), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("datasets compared = %d, want 5", len(rows))
	}
	reused := false
	for _, r := range rows {
		if !r.Identical {
			t.Errorf("%s: fast and full-pass output diverged", r.Dataset)
		}
		if !r.Bitwise {
			t.Errorf("%s: columnar and row-scan output not bitwise-identical", r.Dataset)
		}
		if r.RuleCount == 0 {
			t.Errorf("%s: no rules discovered", r.Dataset)
		}
		if r.StatReuse > 0 {
			reused = true
		}
	}
	if !reused {
		t.Error("sufficient-statistics fast path never fired across all datasets")
	}
}

func TestRenderCompareRows(t *testing.T) {
	rows, err := HotPathCompare(context.Background(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderCompareRows(&sb, rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"dataset", "speedup", "stat-reuse", "BirdMap", "Tax"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table lacks %q:\n%s", want, out)
		}
	}
}

func TestCompareExperimentRegistered(t *testing.T) {
	e, err := Lookup("compare")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := e.Run(context.Background(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 { // five datasets × {fast, full-pass, row-scan}
		t.Errorf("rows = %d, want 15", len(rows))
	}
}
