package experiments

import (
	"context"
	"github.com/crrlab/crr/internal/baseline"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/regress"
)

// splitInterleaved sends every k-th tuple to the test split and the rest to
// training. Interleaving (rather than a suffix split) keeps test tuples
// inside the condition ranges discovered on the training tuples, which is
// what the paper's per-instance evaluation measures; extrapolation beyond
// the observed domain is a forecasting problem, not a CRR one.
func splitInterleaved(rel *dataset.Relation, k int) (train, test *dataset.Relation) {
	train = dataset.NewRelation(rel.Schema)
	test = dataset.NewRelation(rel.Schema)
	for i, t := range rel.Tuples {
		if i%k == k-1 {
			test.Tuples = append(test.Tuples, t)
		} else {
			train.Tuples = append(train.Tuples, t)
		}
	}
	return train, test
}

// fastMLP is the F3 configuration used inside experiments: smaller and
// shorter-trained than the library default so full sweeps stay laptop-fast.
func fastMLP(seed int64) regress.MLPTrainer {
	return regress.MLPTrainer{Hidden: 6, Epochs: 100, LR: 0.05, Seed: seed}
}

// scalabilitySweep runs one method roster over increasing instance sizes.
func scalabilitySweep(ctx context.Context, exp string, spec DatasetSpec, sizes []int, roster func() []baseline.Method) ([]Row, error) {
	var rows []Row
	for _, n := range sizes {
		rel := spec.Gen(n)
		train, test := splitInterleaved(rel, 5)
		for _, m := range roster() {
			row, err := runMethod(ctx, exp, spec.Name, m, train, test, spec.XAttrs, spec.YAttr, "size", float64(n))
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// crrFor builds the default CRR method for a dataset spec.
func crrFor(spec DatasetSpec) *CRRMethod {
	return &CRRMethod{
		RhoM:       spec.RhoM,
		CondAttrs:  spec.CondAttrs,
		PredSize:   0, // the paper's default: predicates at every domain value
		ExpertCuts: spec.ExpertCuts,
		FuseShared: true,
		Compact:    true,
		CompactTol: spec.CompactTol,
	}
}

// Fig2AirQuality reproduces Figure 2: training time, evaluation time,
// #rules and RMSE versus instance size on AirQuality, CRR against all seven
// baselines.
func Fig2AirQuality(ctx context.Context, scale float64) ([]Row, error) {
	spec := AirQualitySpec()
	sizes := []int{
		scaled(1000, scale, 200), scaled(2000, scale, 400),
		scaled(4000, scale, 800), scaled(8000, scale, 1600),
	}
	roster := func() []baseline.Method {
		return []baseline.Method{
			crrFor(spec),
			&baseline.RegTree{RhoM: spec.RhoM},
			&baseline.EBLR{},
			&baseline.AR{},
			&baseline.SampLR{},
			&baseline.MCLR{},
			&baseline.Forest{Trees: 8},
			&baseline.DHR{Periods: []float64{24, 168}},
			&baseline.Recur{},
		}
	}
	return scalabilitySweep(ctx, "fig2", spec, sizes, roster)
}

// Fig3Electricity reproduces Figure 3 on the Electricity stand-in (row
// counts scaled down from 2M; DESIGN.md records the substitution).
func Fig3Electricity(ctx context.Context, scale float64) ([]Row, error) {
	spec := ElectricitySpec()
	sizes := []int{
		scaled(5000, scale, 500), scaled(10000, scale, 1000),
		scaled(20000, scale, 2000), scaled(40000, scale, 4000),
	}
	roster := func() []baseline.Method {
		return []baseline.Method{
			crrFor(spec),
			&baseline.RegTree{RhoM: spec.RhoM},
			&baseline.EBLR{},
			&baseline.AR{},
			&baseline.SampLR{},
			&baseline.MCLR{},
			&baseline.Forest{Trees: 8},
			&baseline.DHR{Periods: []float64{1440}},
			&baseline.Recur{},
		}
	}
	return scalabilitySweep(ctx, "fig3", spec, sizes, roster)
}

// Fig4Tax reproduces Figure 4 on the relational Tax stand-in; only the
// relational-capable methods participate (CRR, RegTree, SampLR, MCLR), as in
// the paper.
func Fig4Tax(ctx context.Context, scale float64) ([]Row, error) {
	spec := TaxSpec()
	sizes := []int{
		scaled(2000, scale, 400), scaled(4000, scale, 800),
		scaled(8000, scale, 1600), scaled(16000, scale, 3200),
	}
	roster := func() []baseline.Method {
		return []baseline.Method{
			crrFor(spec),
			&baseline.RegTree{RhoM: spec.RhoM},
			&baseline.SampLR{},
			&baseline.MCLR{},
		}
	}
	return scalabilitySweep(ctx, "fig4", spec, sizes, roster)
}

// Fig5InstanceScalability reproduces Figure 5: RMSE and time versus instance
// size for CRR against the unconditioned RR models, each with the three
// basic families F1/F2/F3, on BirdMap.
func Fig5InstanceScalability(ctx context.Context, scale float64) ([]Row, error) {
	spec := BirdMapSpec()
	sizes := []int{
		scaled(1000, scale, 200), scaled(2000, scale, 400),
		scaled(4000, scale, 800), scaled(8000, scale, 1600),
	}
	roster := func() []baseline.Method {
		methods := []baseline.Method{}
		for _, fam := range []struct {
			tag     string
			trainer regress.Trainer
		}{
			{"F1", regress.LinearTrainer{}},
			{"F2", regress.LinearTrainer{Ridge: 1}},
			{"F3", fastMLP(1)},
		} {
			crr := crrFor(spec)
			crr.DisplayName = "CRR-" + fam.tag
			crr.Trainer = fam.trainer
			methods = append(methods, crr,
				&RRMethod{DisplayName: "RR-" + fam.tag, Trainer: fam.trainer})
		}
		return methods
	}
	return scalabilitySweep(ctx, "fig5", spec, sizes, roster)
}

// Fig7ColumnScalability reproduces Figure 7: RMSE stability and (near-linear)
// time growth as the number of regression target columns grows, on
// AirQuality. For k target columns the discovery runs once per target; the
// row reports total learning time and mean RMSE.
func Fig7ColumnScalability(ctx context.Context, scale float64) ([]Row, error) {
	spec := AirQualitySpec()
	rel := spec.Gen(scaled(4000, scale, 800))
	train, test := splitInterleaved(rel, 5)
	// Candidate targets: every numeric column except Time.
	targets := []int{}
	for i := 0; i < rel.Schema.Len(); i++ {
		if i != spec.XAttrs[0] && rel.Schema.Attr(i).Kind == dataset.Numeric {
			targets = append(targets, i)
		}
	}
	var rows []Row
	for k := 1; k <= len(targets); k++ {
		var total Row
		for _, y := range targets[:k] {
			m := crrFor(spec)
			row, err := runMethod(ctx, "fig7", spec.Name, m, train, test, spec.XAttrs, y, "columns", float64(k))
			if err != nil {
				return nil, err
			}
			total.Learn += row.Learn
			total.Eval += row.Eval
			total.RMSE += row.RMSE
			total.Rules += row.Rules
		}
		rows = append(rows, Row{
			Experiment: "fig7",
			Dataset:    spec.Name,
			Method:     "CRR",
			Param:      "columns",
			Value:      float64(k),
			Learn:      total.Learn,
			Eval:       total.Eval,
			RMSE:       total.RMSE / float64(k),
			Rules:      total.Rules,
		})
	}
	return rows, nil
}
