package experiments

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/impute"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// TestFullPipelinePerDataset drives the complete system on every dataset
// stand-in: generate → discover (Algorithm 1) → compact (Algorithm 2) →
// persist/restore → impute, asserting the Problem 1 invariants at each step.
func TestFullPipelinePerDataset(t *testing.T) {
	specs := []DatasetSpec{
		BirdMapSpec(), AirQualitySpec(), ElectricitySpec(), TaxSpec(), AbaloneSpec(),
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			rel := spec.Gen(1200)
			preds := predicate.Generate(rel, spec.CondAttrs, predicate.GeneratorConfig{
				ExpertCuts: spec.ExpertCuts,
			})
			res, err := core.Discover(context.Background(), rel, core.WithConfig(core.DiscoverConfig{
				XAttrs:  spec.XAttrs,
				YAttr:   spec.YAttr,
				RhoM:    spec.RhoM,
				Preds:   preds,
				Trainer: regress.LinearTrainer{},
			}))
			if err != nil {
				t.Fatalf("discover: %v", err)
			}
			if cov := res.Rules.Coverage(rel); cov != 1 {
				t.Fatalf("discovery coverage = %v", cov)
			}
			if !res.Rules.Holds(rel) {
				t.Fatal("discovered rules violated on training data")
			}

			compacted, _ := core.CompactOpts(res.Rules, core.CompactOptions{ModelTol: spec.CompactTol})
			if compacted.NumRules() > res.Rules.NumRules() {
				t.Error("compaction grew the rule set")
			}
			if cov := compacted.Coverage(rel); cov != 1 {
				t.Errorf("compacted coverage = %v", cov)
			}

			// Persist and restore; predictions must survive byte-for-byte.
			var buf bytes.Buffer
			if err := core.WriteRuleSet(&buf, compacted); err != nil {
				t.Fatalf("save: %v", err)
			}
			restored, err := core.ReadRuleSet(&buf)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			for _, tp := range rel.Tuples[:100] {
				p1, ok1 := compacted.Predict(tp)
				p2, ok2 := restored.Predict(tp)
				if ok1 != ok2 || math.Abs(p1-p2) > 1e-9 {
					t.Fatalf("persistence changed prediction: %v/%v vs %v/%v", p1, ok1, p2, ok2)
				}
			}

			// Imputation at 10% missing stays near the generator's noise.
			masked := rel.Clone()
			holes := masked.MaskMissing(spec.YAttr, 0.1, rand.New(rand.NewSource(9)))
			rmse, st, err := impute.Evaluate(masked, rel, spec.YAttr, holes,
				impute.RuleSetPredictor{Rules: restored, UseFallback: true})
			if err != nil {
				t.Fatalf("impute: %v", err)
			}
			if st.Imputed == 0 {
				t.Fatal("nothing imputed")
			}
			// Generous per-dataset sanity bound: 4× the ρ_M scale.
			if rmse > 4*spec.RhoM {
				t.Errorf("imputation RMSE %v above 4·ρ_M = %v", rmse, 4*spec.RhoM)
			}
		})
	}
}

// TestParallelMatchesSequentialQuality cross-checks DiscoverParallel on two
// dataset stand-ins.
func TestParallelMatchesSequentialQuality(t *testing.T) {
	for _, spec := range []DatasetSpec{ElectricitySpec(), TaxSpec()} {
		rel := spec.Gen(2000)
		preds := predicate.Generate(rel, spec.CondAttrs, predicate.GeneratorConfig{})
		cfg := core.DiscoverConfig{
			XAttrs: spec.XAttrs, YAttr: spec.YAttr, RhoM: spec.RhoM,
			Preds: preds, Trainer: regress.LinearTrainer{},
		}
		seq, err := core.DiscoverWithConfig(rel, cfg)
		if err != nil {
			t.Fatal(err)
		}
		par, err := core.DiscoverParallel(rel, cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		if cov := par.Rules.Coverage(rel); cov != 1 {
			t.Errorf("%s: parallel coverage %v", spec.Name, cov)
		}
		sr, pr := seq.Rules.RMSE(rel), par.Rules.RMSE(rel)
		if pr > 2*sr+0.1*spec.RhoM {
			t.Errorf("%s: parallel RMSE %v vs sequential %v", spec.Name, pr, sr)
		}
	}
}

// TestMaintainOnGrowingBirdMap simulates the streaming scenario: discover on
// two years of tracking data, then ingest the third year incrementally; the
// recurring seasonal regimes should be absorbed mostly by sharing or
// satisfaction, not full re-discovery.
func TestMaintainOnGrowingBirdMap(t *testing.T) {
	spec := BirdMapSpec()
	full := spec.Gen(3000)
	dateIdx := spec.XAttrs[0]
	// Train on the first two years; the third arrives as a stream.
	train := dataset.NewRelation(full.Schema)
	var newIdx []int
	for i, tp := range full.Tuples {
		if tp[dateIdx].Num < 730 {
			train.Tuples = append(train.Tuples, tp)
		} else {
			newIdx = append(newIdx, i)
		}
	}
	preds := predicate.Generate(full, spec.CondAttrs, predicate.GeneratorConfig{})
	cfg := core.DiscoverConfig{
		XAttrs: spec.XAttrs, YAttr: spec.YAttr, RhoM: spec.RhoM,
		Preds: preds, Trainer: regress.LinearTrainer{},
	}
	res, err := core.DiscoverWithConfig(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := core.Maintain(context.Background(), full, res.Rules, newIdx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rediscovered == len(newIdx) {
		t.Error("every third-year tuple was re-discovered; nothing was absorbed")
	}
	// Maintain's contract: either the maintained set holds on the whole
	// database, or it reports Conflicts — rules violated by new tuples that
	// interleave with the rules' own satisfied data (here: year-3 ramp
	// fixes under an old open plateau window) — signalling that a full
	// re-discovery is needed.
	if st.Conflicts == 0 && !out.Holds(full) {
		t.Error("maintained rules violated without reporting a conflict")
	}
	if st.Conflicts > 0 {
		// The escape hatch must work: re-discovery over the full track.
		res2, err := core.DiscoverWithConfig(full, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res2.Rules.Holds(full) {
			t.Error("full re-discovery still violated")
		}
	}
}
