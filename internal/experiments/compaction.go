package experiments

import (
	"context"
	"math/rand"
	"time"

	"github.com/crrlab/crr/internal/baseline"
	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/eval"
	"github.com/crrlab/crr/internal/impute"
	"github.com/crrlab/crr/internal/regress"
)

// familyRoster is the F1/F2/F3 sweep used in the compaction experiments.
func familyRoster() []struct {
	Tag     string
	Trainer regress.Trainer
} {
	return []struct {
		Tag     string
		Trainer regress.Trainer
	}{
		{"F1", regress.LinearTrainer{}},
		{"F2", regress.LinearTrainer{Ridge: 1}},
		{"F3", fastMLP(3)},
	}
}

// Fig9RuleCompaction reproduces Figure 9: the number of CRRs from a
// regression tree (green bars), from the tree followed by Algorithm 2
// compaction (purple bars), and from CRR searching (Algorithm 1) directly —
// for F1/F2/F3 leaf models on BirdMap and Abalone. The Rules field carries
// the bar height.
func Fig9RuleCompaction(ctx context.Context, scale float64) ([]Row, error) {
	var rows []Row
	for _, spec := range []DatasetSpec{BirdMapSpec(), AbaloneSpec()} {
		rel := spec.Gen(scaled(3000, scale, 600))
		train, _ := splitInterleaved(rel, 5)
		for _, fam := range familyRoster() {
			tree := &baseline.RegTree{RhoM: spec.RhoM, Trainer: fam.Trainer, SplitAttrs: spec.CondAttrs}
			learn := eval.Timed(func() { _ = tree.Fit(train, spec.XAttrs, spec.YAttr) })
			rows = append(rows, Row{
				Experiment: "fig9", Dataset: spec.Name,
				Method: "RegTree-" + fam.Tag, Param: "family", Learn: learn,
				Rules: tree.NumRules(),
			})

			leafRules := tree.ToRuleSet(train)
			var compacted *core.RuleSet
			compactTime := eval.Timed(func() {
				compacted, _ = core.CompactOpts(leafRules, core.CompactOptions{ModelTol: spec.CompactTol})
			})
			rows = append(rows, Row{
				Experiment: "fig9", Dataset: spec.Name,
				Method: "RegTree+Compact-" + fam.Tag, Param: "family", Learn: learn + compactTime,
				Rules: compacted.NumRules(),
			})

			// "CRR searching" is Algorithm 1 alone, without compaction.
			crr := crrFor(spec)
			crr.Trainer = fam.Trainer
			crr.Compact = false
			crrLearn := eval.Timed(func() { _ = crr.Fit(train, spec.XAttrs, spec.YAttr) })
			rows = append(rows, Row{
				Experiment: "fig9", Dataset: spec.Name,
				Method: "CRRSearch-" + fam.Tag, Param: "family", Learn: crrLearn,
				Rules: crr.NumRules(),
			})
		}
	}
	return rows, nil
}

// Fig10Imputation reproduces Figure 10: missing-data imputation RMSE and
// time using regression-tree rules with and without compaction (and CRR
// searching for reference), at 10% missing cells, on BirdMap and Abalone.
// Compaction must keep RMSE essentially unchanged while reducing imputation
// time (fewer rules to locate).
func Fig10Imputation(ctx context.Context, scale float64) ([]Row, error) {
	var rows []Row
	for _, spec := range []DatasetSpec{BirdMapSpec(), AbaloneSpec()} {
		original := spec.Gen(scaled(3000, scale, 600))
		masked := original.Clone()
		maskedRows := masked.MaskMissing(spec.YAttr, 0.10, rand.New(rand.NewSource(21)))

		for _, fam := range familyRoster() {
			tree := &baseline.RegTree{RhoM: spec.RhoM, Trainer: fam.Trainer, SplitAttrs: spec.CondAttrs}
			if err := tree.Fit(masked, spec.XAttrs, spec.YAttr); err != nil {
				return nil, err
			}
			leafRules := tree.ToRuleSet(masked)
			compacted, _ := core.CompactOpts(leafRules, core.CompactOptions{ModelTol: spec.CompactTol})

			for _, variant := range []struct {
				name  string
				rules *core.RuleSet
			}{
				{"RegTree-" + fam.Tag, leafRules},
				{"RegTree+Compact-" + fam.Tag, compacted},
			} {
				rmse, st := imputeRepeated(masked, original, spec.YAttr, maskedRows, variant.rules)
				rows = append(rows, Row{
					Experiment: "fig10", Dataset: spec.Name,
					Method: variant.name, Param: "impute",
					Eval: st, RMSE: rmse, Rules: variant.rules.NumRules(),
				})
			}

			crr := crrFor(spec)
			crr.Trainer = fam.Trainer
			crr.Compact = false
			if err := crr.Fit(masked, spec.XAttrs, spec.YAttr); err != nil {
				return nil, err
			}
			rmse, st := imputeRepeated(masked, original, spec.YAttr, maskedRows, crr.Rules())
			rows = append(rows, Row{
				Experiment: "fig10", Dataset: spec.Name,
				Method: "CRRSearch-" + fam.Tag, Param: "impute",
				Eval: st, RMSE: rmse, Rules: crr.NumRules(),
			})
		}
	}
	return rows, nil
}

// imputeRepeated measures imputation accuracy and averages the imputation
// time over a few repetitions (single runs are too fast to time stably).
func imputeRepeated(masked, original *dataset.Relation, col int, rows []int, rules *core.RuleSet) (float64, time.Duration) {
	const reps = 5
	var rmse float64
	var total time.Duration
	p := impute.RuleSetPredictor{Rules: rules, UseFallback: true}
	for r := 0; r < reps; r++ {
		var st impute.Stats
		rmse, st, _ = impute.Evaluate(masked, original, col, rows, p)
		total += st.Duration
	}
	return rmse, total / reps
}
