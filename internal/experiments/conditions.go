package experiments

import (
	"context"
	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// Fig6PredicateScalability reproduces Figure 6: RMSE and time under growing
// predicate-space sizes |ℙ| on BirdMap, for CRR with F1/F2/F3. Larger ℙ
// refines conditions further; past a point F1's cost flattens because "a
// small size of ℙ is enough to generate reliable CRRs".
func Fig6PredicateScalability(ctx context.Context, scale float64) ([]Row, error) {
	spec := BirdMapSpec()
	rel := spec.Gen(scaled(4000, scale, 800))
	train, test := splitInterleaved(rel, 5)
	sizes := []int{4, 8, 16, 32, 64}
	var rows []Row
	for _, ps := range sizes {
		for _, fam := range []struct {
			tag     string
			trainer regress.Trainer
		}{
			{"F1", regress.LinearTrainer{}},
			{"F2", regress.LinearTrainer{Ridge: 1}},
			{"F3", fastMLP(2)},
		} {
			m := crrFor(spec)
			m.DisplayName = "CRR-" + fam.tag
			m.Trainer = fam.trainer
			m.PredSize = ps
			row, err := runMethod(ctx, "fig6", spec.Name, m, train, test, spec.XAttrs, spec.YAttr, "predicates", float64(ps))
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig8BiasSensitivity reproduces Figure 8: the ρ_M parameter study on
// BirdMap and Abalone. RMSE is U-shaped in ρ_M — tiny ρ_M over-refines
// conditions, large ρ_M accepts sloppy models ("ρ_M = 5 for Latitude" is the
// paper's bad case).
func Fig8BiasSensitivity(ctx context.Context, scale float64) ([]Row, error) {
	var rows []Row
	for _, spec := range []DatasetSpec{BirdMapSpec(), AbaloneSpec()} {
		rel := spec.Gen(scaled(4000, scale, 800))
		train, test := splitInterleaved(rel, 5)
		for _, rho := range []float64{0.1, 0.5, 1, 2, 5} {
			m := crrFor(spec)
			m.RhoM = rho
			row, err := runMethod(ctx, "fig8", spec.Name, m, train, test, spec.XAttrs, spec.YAttr, "rho", rho)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Table3PredicateGenerators reproduces Table III: learning time, evaluation
// time, RMSE and #rules under the three predicate generators (expert
// knowledge, binary separation, random separation) at equal |ℙ|, on BirdMap
// and Abalone.
func Table3PredicateGenerators(ctx context.Context, scale float64) ([]Row, error) {
	var rows []Row
	for _, spec := range []DatasetSpec{BirdMapSpec(), AbaloneSpec()} {
		rel := spec.Gen(scaled(4000, scale, 800))
		train, test := splitInterleaved(rel, 5)
		for _, gen := range []struct {
			name string
			kind predicate.GeneratorKind
		}{
			{"Expert", predicate.Expert},
			{"Binary", predicate.Binary},
			{"Random", predicate.Random},
		} {
			m := crrFor(spec)
			m.DisplayName = gen.name
			m.PredKind = gen.kind
			// A finite |P| is what distinguishes the generators; with the
			// every-value default they would all coincide.
			m.PredSize = 24
			m.Seed = 7
			row, err := runMethod(ctx, "tab3", spec.Name, m, train, test, spec.XAttrs, spec.YAttr, "generator", 0)
			if err != nil {
				return nil, err
			}
			row.Param = gen.name
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Table4ConjunctionOrdering reproduces Table IV: the effect of processing
// conjunctions in decreasing, increasing or random ind(C) order on BirdMap
// and Abalone. Decreasing order front-loads the parts most likely to share
// an existing model (Proposition 8) and should show the lowest learning
// time.
func Table4ConjunctionOrdering(ctx context.Context, scale float64) ([]Row, error) {
	var rows []Row
	for _, spec := range []DatasetSpec{BirdMapSpec(), AbaloneSpec()} {
		rel := spec.Gen(scaled(4000, scale, 800))
		train, test := splitInterleaved(rel, 5)
		for _, ord := range []struct {
			name  string
			order core.QueueOrder
		}{
			{"Decrease", core.Decrease},
			{"Increase", core.Increase},
			{"Random", core.RandomOrder},
		} {
			m := crrFor(spec)
			m.DisplayName = ord.name
			m.Order = ord.order
			m.Seed = 13
			row, err := runMethod(ctx, "tab4", spec.Name, m, train, test, spec.XAttrs, spec.YAttr, "order", 0)
			if err != nil {
				return nil, err
			}
			row.Param = ord.name
			rows = append(rows, row)
		}
	}
	return rows, nil
}
