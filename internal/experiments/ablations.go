package experiments

import (
	"context"
	"math"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/regress"
)

// AblationSharing isolates the paper's core mechanism: Algorithm 1 with
// model sharing (Lines 7–10) against the same search with sharing disabled.
// Sharing should cut models trained, rules emitted and learning time at
// equal RMSE (§VI-B1).
func AblationSharing(ctx context.Context, scale float64) ([]Row, error) {
	var rows []Row
	for _, spec := range []DatasetSpec{BirdMapSpec(), ElectricitySpec()} {
		n := scaled(4000, scale, 800)
		rel := spec.Gen(n)
		train, test := splitInterleaved(rel, 5)
		for _, variant := range []struct {
			name    string
			disable bool
		}{
			{"sharing-on", false},
			{"sharing-off", true},
		} {
			m := crrFor(spec)
			m.DisplayName = variant.name
			m.DisableSharing = variant.disable
			row, err := runMethod(ctx, "ablation-sharing", spec.Name, m, train, test, spec.XAttrs, spec.YAttr, "variant", 0)
			if err != nil {
				return nil, err
			}
			row.Param = variant.name
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// AblationDelta0 compares the δ0 midpoint rule of Proposition 6 against a
// least-squares δ (the residual mean) as the sharing shift. The midpoint
// minimizes the maximum error — the criterion the CRR semantics bound — so
// it must accept sharing at least as often as the LS shift under the ρ_M
// gate. The experiment reports, per dataset, how many candidate parts each
// shift rule would accept for sharing against a reference model.
func AblationDelta0(ctx context.Context, scale float64) ([]Row, error) {
	var rows []Row
	for _, spec := range []DatasetSpec{BirdMapSpec(), AbaloneSpec()} {
		rel := spec.Gen(scaled(3000, scale, 600))
		// Discover with sharing to obtain the model pool and the parts; keep
		// one rule per part (no fusing/compaction) so each rule's condition
		// selects a homogeneous candidate part for the shift test.
		m := crrFor(spec)
		m.FuseShared = false
		m.Compact = false
		if err := m.Fit(rel, spec.XAttrs, spec.YAttr); err != nil {
			return nil, err
		}
		rules := m.Rules()
		if rules.NumRules() == 0 {
			continue
		}
		ref := rules.Rules[0].Model
		midpointAccepts, lsAccepts := 0, 0
		for _, r := range rules.Rules {
			// Gather the part the rule covers.
			var idxs []int
			for i, t := range rel.Tuples {
				if r.Covers(t) {
					idxs = append(idxs, i)
				}
			}
			x, y, _ := core.FeatureRows(rel, idxs, rules.XAttrs, rules.YAttr)
			if len(x) == 0 {
				continue
			}
			if res := regress.ShareTest(ref, x, y, spec.RhoM); res.OK {
				midpointAccepts++
			}
			if lsShareOK(ref, x, y, spec.RhoM) {
				lsAccepts++
			}
		}
		rows = append(rows,
			Row{Experiment: "ablation-delta0", Dataset: spec.Name, Method: "midpoint-δ0",
				Param: "accepts", Rules: midpointAccepts},
			Row{Experiment: "ablation-delta0", Dataset: spec.Name, Method: "least-squares-δ",
				Param: "accepts", Rules: lsAccepts},
		)
	}
	return rows, nil
}

// lsShareOK tests sharing with the least-squares shift (the residual mean)
// instead of the minimax midpoint.
func lsShareOK(f regress.Model, x [][]float64, y []float64, rhoM float64) bool {
	var sum float64
	for i, row := range x {
		sum += y[i] - f.Predict(row)
	}
	delta := sum / float64(len(x))
	for i, row := range x {
		if math.Abs(y[i]-(f.Predict(row)+delta)) > rhoM {
			return false
		}
	}
	return true
}
