package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/eval"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/telemetry"
)

// CompareRow is one before/after measurement of the discovery hot path on a
// dataset: the same sequential mine run with the sufficient-statistics fast
// path (the default), with it disabled via regress.FullPass, and with the
// columnar scan engine swapped for the tuple-at-a-time reference path
// (DiscoverConfig.RowScan).
type CompareRow struct {
	Dataset string
	Rows    int
	// FastWall/FullWall are the discovery wall times with and without the
	// fast path; RowWall is the fast path re-run on the tuple-at-a-time
	// reference scan instead of the columnar engine.
	FastWall, FullWall, RowWall time.Duration
	// Trained is the number of Line-13 fits (identical in both runs when
	// Identical holds); StatReuse counts how many of the fast run's fits the
	// Gram path served.
	Trained   int
	StatReuse int64
	// ScanWidth is the mean number of models per single-pass share scan.
	ScanWidth float64
	// RuleCount is the discovered rule count; Identical reports that both
	// runs produced structurally identical output (same rules, same order,
	// same conditions, weights within 1e-9) — the hot path's correctness
	// contract.
	RuleCount int
	Identical bool
	// Bitwise reports that the columnar engine and the row-scan reference
	// produced byte-identical rule sets (weights compared with tol 0) — the
	// columnar execution core's parity contract.
	Bitwise bool
}

// hotPathSpecs are the five synthetic evaluation datasets the comparison
// (and the byte-identity acceptance check) runs on.
func hotPathSpecs() []DatasetSpec {
	return []DatasetSpec{BirdMapSpec(), AirQualitySpec(), ElectricitySpec(), TaxSpec(), AbaloneSpec()}
}

// HotPathCompare runs the before/after comparison of the discovery hot path
// on the five evaluation datasets: the default trainer (Gram fast path,
// column cache, single-pass share scan all active) against the same trainer
// wrapped in regress.FullPass, which re-fits every part from its design
// matrix. Output equality is checked structurally with weights within 1e-9;
// the sequential engine is used so rule order is deterministic.
func HotPathCompare(ctx context.Context, scale float64) ([]CompareRow, error) {
	rows := make([]CompareRow, 0, 5)
	for _, spec := range hotPathSpecs() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := scaled(4000, scale, 400)
		rel := spec.Gen(n)
		preds := predicate.Generate(rel, spec.CondAttrs, predicate.GeneratorConfig{
			Kind: predicate.Binary, Size: 64,
		})
		cfg := core.DiscoverConfig{
			XAttrs:  spec.XAttrs,
			YAttr:   spec.YAttr,
			RhoM:    spec.RhoM,
			Preds:   preds,
			Trainer: regress.LinearTrainer{},
		}

		fastReg := telemetry.New()
		cfg.Telemetry = fastReg
		var fast *core.DiscoverResult
		var err error
		fastWall := eval.Timed(func() {
			fast, err = core.Discover(ctx, rel, core.WithConfig(cfg))
		})
		if err != nil {
			return nil, fmt.Errorf("compare %s (fast): %w", spec.Name, err)
		}

		cfg.Trainer = regress.FullPass{T: regress.LinearTrainer{}}
		cfg.Telemetry = nil
		var full *core.DiscoverResult
		fullWall := eval.Timed(func() {
			full, err = core.Discover(ctx, rel, core.WithConfig(cfg))
		})
		if err != nil {
			return nil, fmt.Errorf("compare %s (full): %w", spec.Name, err)
		}

		// Third run: the fast trainer again, but on the tuple-at-a-time
		// reference scan. The columnar engine must be bitwise-identical to it
		// (tol 0), not just structurally equal.
		cfg.Trainer = regress.LinearTrainer{}
		cfg.RowScan = true
		var rowscan *core.DiscoverResult
		rowWall := eval.Timed(func() {
			rowscan, err = core.Discover(ctx, rel, core.WithConfig(cfg))
		})
		if err != nil {
			return nil, fmt.Errorf("compare %s (rowscan): %w", spec.Name, err)
		}

		snap := fastReg.Snapshot()
		rows = append(rows, CompareRow{
			Dataset:   spec.Name,
			Rows:      rel.Len(),
			FastWall:  fastWall,
			FullWall:  fullWall,
			RowWall:   rowWall,
			Trained:   fast.Stats.ModelsTrained,
			StatReuse: snap.Counters[telemetry.MetricStatReuse],
			ScanWidth: snap.Distributions[telemetry.MetricShareScanWidth].Mean(),
			RuleCount: fast.Rules.NumRules(),
			Identical: SameRules(fast.Rules, full.Rules, 1e-9),
			Bitwise:   SameRules(fast.Rules, rowscan.Rules, 0),
		})
	}
	return rows, nil
}

// SameRules reports structural identity of two rule sets: same rule count
// and order, same conditions and bias, and model weights within tol. It is
// the acceptance check of the hot path — the fast paths must not change
// discovery output.
func SameRules(a, b *core.RuleSet, tol float64) bool {
	if a.NumRules() != b.NumRules() {
		return false
	}
	for i := range a.Rules {
		ra, rb := &a.Rules[i], &b.Rules[i]
		if ra.Cond.String() != rb.Cond.String() {
			return false
		}
		if d := ra.Rho - rb.Rho; d > tol || d < -tol {
			return false
		}
		if ra.Model == nil || rb.Model == nil || !ra.Model.Equal(rb.Model, tol) {
			return false
		}
	}
	return true
}

// RenderCompareRows writes the comparison as an aligned table with a
// speedup column, the output of crrbench -exp compare.
func RenderCompareRows(w io.Writer, rows []CompareRow) error {
	t := eval.NewTable("[compare] discovery hot path: sufficient statistics vs full pass vs row scan",
		"dataset", "rows", "fast", "full-pass", "row-scan", "speedup", "trained", "stat-reuse", "scan-width", "#rules", "identical", "bitwise")
	for _, r := range rows {
		speedup := "n/a"
		if r.FastWall > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(r.FullWall)/float64(r.FastWall))
		}
		t.AddRowf(r.Dataset, r.Rows, r.FastWall, r.FullWall, r.RowWall, speedup,
			r.Trained, r.StatReuse, fmt.Sprintf("%.1f", r.ScanWidth), r.RuleCount, r.Identical, r.Bitwise)
	}
	return t.Render(w)
}

// CompareHotPath adapts HotPathCompare to the experiment registry's row
// shape so `crrbench -exp compare` composes with -format csv like every
// other experiment: the fast run maps to method "CRR" and the full pass to
// "CRR-fullpass", with learn time carrying the discovery wall.
func CompareHotPath(ctx context.Context, scale float64) ([]Row, error) {
	cmp, err := HotPathCompare(ctx, scale)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, c := range cmp {
		rows = append(rows,
			Row{
				Experiment: "compare", Dataset: c.Dataset, Method: "CRR",
				Param: "rows", Value: float64(c.Rows),
				Learn: c.FastWall, Rules: c.RuleCount, Trained: c.Trained,
			},
			Row{
				Experiment: "compare", Dataset: c.Dataset, Method: "CRR-fullpass",
				Param: "rows", Value: float64(c.Rows),
				Learn: c.FullWall, Rules: c.RuleCount, Trained: c.Trained,
			},
			Row{
				Experiment: "compare", Dataset: c.Dataset, Method: "CRR-rowscan",
				Param: "rows", Value: float64(c.Rows),
				Learn: c.RowWall, Rules: c.RuleCount, Trained: c.Trained,
			})
		if !c.Identical {
			return nil, fmt.Errorf("compare %s: fast and full-pass output diverged", c.Dataset)
		}
		if !c.Bitwise {
			return nil, fmt.Errorf("compare %s: columnar and row-scan output not bitwise-identical", c.Dataset)
		}
	}
	return rows, nil
}
