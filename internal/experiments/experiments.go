// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI) on the synthetic dataset substitutes documented in
// DESIGN.md. Each experiment returns plain rows; cmd/crrbench renders them
// and bench_test.go wraps them in testing.B targets.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/crrlab/crr/internal/baseline"
	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/eval"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/telemetry"
)

// Row is one measurement: a method evaluated at one parameter point of one
// experiment.
type Row struct {
	Experiment string
	Dataset    string
	Method     string
	Param      string  // axis label, e.g. "size" or "rho"
	Value      float64 // axis value
	Learn      time.Duration
	Eval       time.Duration
	RMSE       float64
	Rules      int
	// Discovery telemetry, populated for methods exposing core.DiscoverStats
	// (zero for baselines): models trained, Proposition 6 share hits, and
	// conditions expanded.
	Trained  int
	Shared   int
	Expanded int
}

// RenderRows writes rows as an aligned table, the output of cmd/crrbench.
func RenderRows(w io.Writer, title string, rows []Row) error {
	t := eval.NewTable(title, "dataset", "method", "param", "value", "learn", "eval", "rmse", "#rules",
		"trained", "shared", "expanded")
	for _, r := range rows {
		t.AddRowf(r.Dataset, r.Method, r.Param, r.Value, r.Learn, r.Eval, r.RMSE, r.Rules,
			r.Trained, r.Shared, r.Expanded)
	}
	return t.Render(w)
}

// CRRMethod adapts CRR discovery (Algorithm 1, optionally followed by
// Algorithm 2) to the baseline.Method interface used by every experiment.
type CRRMethod struct {
	// DisplayName overrides the method name in result rows ("CRR" default).
	DisplayName string
	// RhoM is the maximum bias ρ_M; 0 means 1.0 (the paper's default).
	RhoM float64
	// Trainer selects F1/F2/F3; nil means F1 (OLS).
	Trainer regress.Trainer
	// CondAttrs are the attributes the predicate space ranges over; empty
	// means the X attributes plus every categorical attribute (never Y).
	CondAttrs []int
	// PredSize is |ℙ| per numeric attribute; 0 selects the paper's default
	// of a predicate pair at every distinct domain value (§VI-A2).
	PredSize int
	// PredKind selects the predicate generator; Binary is the paper default.
	PredKind predicate.GeneratorKind
	// ExpertCuts feeds the Expert generator.
	ExpertCuts map[int][]float64
	// Order is the ind(C) queue ordering.
	Order core.QueueOrder
	// FuseShared fuses share hits into the existing rule's DNF during
	// search (see core.DiscoverConfig.FuseShared).
	FuseShared bool
	// Compact additionally runs Algorithm 2 after discovery.
	Compact bool
	// CompactTol is the Algorithm 2 model tolerance (0 = exact inference).
	CompactTol float64
	// DisableSharing ablates Lines 7–10 of Algorithm 1.
	DisableSharing bool
	// Seed drives random predicate generation and RandomOrder.
	Seed int64
	// Workers selects the parallel discovery engine when > 1.
	Workers int
	// Telemetry is passed through to the discovery engine.
	Telemetry *telemetry.Registry

	ctx   context.Context
	rules *core.RuleSet
	stats core.DiscoverStats
}

// SetContext attaches a context to the next Fit, which propagates it into
// the discovery engine. runMethod calls this for every method implementing
// it; baseline.Method.Fit itself stays context-free.
func (m *CRRMethod) SetContext(ctx context.Context) { m.ctx = ctx }

// Name implements baseline.Method.
func (m *CRRMethod) Name() string {
	if m.DisplayName != "" {
		return m.DisplayName
	}
	return "CRR"
}

// Fit implements baseline.Method.
func (m *CRRMethod) Fit(rel *dataset.Relation, xattrs []int, yattr int) error {
	rhoM := m.RhoM
	if rhoM == 0 {
		rhoM = 1
	}
	trainer := m.Trainer
	if trainer == nil {
		trainer = regress.LinearTrainer{}
	}
	cond := m.CondAttrs
	if len(cond) == 0 {
		cond = defaultCondAttrs(rel.Schema, xattrs, yattr)
	}
	preds := predicate.Generate(rel, cond, predicate.GeneratorConfig{
		Kind:       m.PredKind,
		Size:       m.PredSize,
		ExpertCuts: m.ExpertCuts,
		Seed:       m.Seed,
	})
	ctx := m.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := core.Discover(ctx, rel, core.WithConfig(core.DiscoverConfig{
		XAttrs:         xattrs,
		YAttr:          yattr,
		RhoM:           rhoM,
		Preds:          preds,
		Trainer:        trainer,
		Order:          m.Order,
		Seed:           m.Seed,
		DisableSharing: m.DisableSharing,
		FuseShared:     m.FuseShared,
		Workers:        m.Workers,
		Telemetry:      m.Telemetry,
	}))
	if err != nil {
		return err
	}
	m.rules, m.stats = res.Rules, res.Stats
	m.rules.SetTelemetry(m.Telemetry)
	if m.Compact {
		var cerr error
		m.rules, _, cerr = core.CompactCtx(ctx, m.rules, core.CompactOptions{
			ModelTol:  m.CompactTol,
			Telemetry: m.Telemetry,
		})
		if cerr != nil {
			return cerr
		}
		m.rules.SetTelemetry(m.Telemetry)
	}
	return nil
}

// Predict implements baseline.Method.
func (m *CRRMethod) Predict(t dataset.Tuple) (float64, bool) {
	if m.rules == nil {
		return 0, false
	}
	return m.rules.Predict(t)
}

// NumRules implements baseline.Method.
func (m *CRRMethod) NumRules() int {
	if m.rules == nil {
		return 0
	}
	return m.rules.NumRules()
}

// Rules exposes the discovered set for compaction/imputation experiments.
func (m *CRRMethod) Rules() *core.RuleSet { return m.rules }

// Stats exposes the discovery statistics.
func (m *CRRMethod) Stats() core.DiscoverStats { return m.stats }

// defaultCondAttrs returns the X attributes plus every categorical
// attribute, excluding Y (Definition 1 forbids predicates on Y).
func defaultCondAttrs(schema *dataset.Schema, xattrs []int, yattr int) []int {
	seen := make(map[int]bool)
	var out []int
	add := func(a int) {
		if a != yattr && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, a := range xattrs {
		add(a)
	}
	for i := 0; i < schema.Len(); i++ {
		if schema.Attr(i).Kind == dataset.Categorical {
			add(i)
		}
	}
	return out
}

// RRMethod is the paper's "RR" reference: a single regression model with no
// conditions, trained over the whole data part (Figures 5–8 compare CRR
// against RR for F1/F2/F3).
type RRMethod struct {
	DisplayName string
	Trainer     regress.Trainer

	model  regress.Model
	xattrs []int
}

// Name implements baseline.Method.
func (m *RRMethod) Name() string {
	if m.DisplayName != "" {
		return m.DisplayName
	}
	return "RR"
}

// Fit implements baseline.Method.
func (m *RRMethod) Fit(rel *dataset.Relation, xattrs []int, yattr int) error {
	trainer := m.Trainer
	if trainer == nil {
		trainer = regress.LinearTrainer{}
	}
	m.xattrs = append([]int(nil), xattrs...)
	var idxs []int
	for i := range rel.Tuples {
		idxs = append(idxs, i)
	}
	x, y, _ := core.FeatureRows(rel, idxs, xattrs, yattr)
	if len(x) == 0 {
		m.model = nil
		return nil
	}
	model, err := trainer.Train(x, y)
	if err != nil {
		return err
	}
	m.model = model
	return nil
}

// Predict implements baseline.Method.
func (m *RRMethod) Predict(t dataset.Tuple) (float64, bool) {
	if m.model == nil {
		return 0, false
	}
	row := make([]float64, len(m.xattrs))
	for i, a := range m.xattrs {
		if t[a].Null {
			return 0, false
		}
		row[i] = t[a].Num
	}
	return m.model.Predict(row), true
}

// NumRules implements baseline.Method.
func (m *RRMethod) NumRules() int {
	if m.model == nil {
		return 0
	}
	return 1
}

// runMethod fits method on train, scores on test, and returns the row. The
// context reaches methods that implement SetContext (CRRMethod does), so
// canceling it stops a discovery-backed fit mid-mine; discovery statistics
// are copied into the row for methods exposing them.
func runMethod(ctx context.Context, exp, ds string, method baseline.Method, train, test *dataset.Relation,
	xattrs []int, yattr int, param string, value float64) (Row, error) {
	if err := ctx.Err(); err != nil {
		return Row{}, fmt.Errorf("%s/%s %s: %w", exp, ds, method.Name(), err)
	}
	if sc, ok := method.(interface{ SetContext(context.Context) }); ok {
		sc.SetContext(ctx)
	}
	var fitErr error
	learn := eval.Timed(func() { fitErr = method.Fit(train, xattrs, yattr) })
	if fitErr != nil {
		return Row{}, fmt.Errorf("%s/%s %s: %w", exp, ds, method.Name(), fitErr)
	}
	var idxs []int
	for i := range train.Tuples {
		idxs = append(idxs, i)
	}
	_, y, _ := core.FeatureRows(train, idxs, xattrs, yattr)
	fallback := mean(y)
	rmse, evalTime := eval.Score(method, test, yattr, fallback)
	row := Row{
		Experiment: exp,
		Dataset:    ds,
		Method:     method.Name(),
		Param:      param,
		Value:      value,
		Learn:      learn,
		Eval:       evalTime,
		RMSE:       rmse,
		Rules:      method.NumRules(),
	}
	if sp, ok := method.(interface{ Stats() core.DiscoverStats }); ok {
		st := sp.Stats()
		row.Trained = st.ModelsTrained
		row.Shared = st.ShareHits
		row.Expanded = st.NodesExpanded
	}
	return row, nil
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// scaled returns max(min, round(n·scale)); experiments accept a scale in
// (0, 1] so tests and quick benches can shrink the paper's sizes.
func scaled(n int, scale float64, min int) int {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	v := int(float64(n) * scale)
	if v < min {
		v = min
	}
	return v
}

// WriteRowsCSV writes rows in machine-readable CSV (one header row), for
// plotting the figures outside Go. Durations are emitted in seconds.
func WriteRowsCSV(w io.Writer, rows []Row) error {
	if _, err := io.WriteString(w, "experiment,dataset,method,param,value,learn_s,eval_s,rmse,rules,trained,shared,expanded\n"); err != nil {
		return err
	}
	for _, r := range rows {
		_, err := fmt.Fprintf(w, "%s,%s,%s,%s,%g,%g,%g,%g,%d,%d,%d,%d\n",
			r.Experiment, r.Dataset, r.Method, r.Param, r.Value,
			r.Learn.Seconds(), r.Eval.Seconds(), r.RMSE, r.Rules,
			r.Trained, r.Shared, r.Expanded)
		if err != nil {
			return err
		}
	}
	return nil
}
