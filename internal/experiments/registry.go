package experiments

import (
	"context"
	"fmt"
	"sort"
)

// Experiment couples an experiment id with its runner and the paper artifact
// it regenerates. Runners honor context cancellation between method fits and
// inside every discovery they launch.
type Experiment struct {
	ID       string
	Artifact string // the table/figure in the paper
	Run      func(ctx context.Context, scale float64) ([]Row, error)
}

// Registry returns every experiment keyed by id, in a stable order.
func Registry() []Experiment {
	return []Experiment{
		{"fig2", "Figure 2: scalability vs baselines, AirQuality", Fig2AirQuality},
		{"fig3", "Figure 3: scalability vs baselines, Electricity", Fig3Electricity},
		{"fig4", "Figure 4: scalability vs baselines, Tax", Fig4Tax},
		{"fig5", "Figure 5: instance scalability CRR vs RR, BirdMap", Fig5InstanceScalability},
		{"fig6", "Figure 6: predicate scalability, BirdMap", Fig6PredicateScalability},
		{"fig7", "Figure 7: column scalability, AirQuality", Fig7ColumnScalability},
		{"fig8", "Figure 8: bias parameter study, BirdMap+Abalone", Fig8BiasSensitivity},
		{"tab3", "Table III: predicate generators", Table3PredicateGenerators},
		{"tab4", "Table IV: conjunction ordering", Table4ConjunctionOrdering},
		{"fig9", "Figure 9: rule compaction on regression trees", Fig9RuleCompaction},
		{"fig10", "Figure 10: imputation with/without compaction", Fig10Imputation},
		{"ablation-sharing", "Ablation: model sharing on/off", AblationSharing},
		{"ablation-delta0", "Ablation: δ0 midpoint vs least-squares δ", AblationDelta0},
		{"ablation-fuse", "Ablation: eager shared-rule fusion on/off", AblationFuse},
		{"ablation-prune", "Ablation: §VII post-pruning of over-refined rules", AblationPrune},
		{"extra-birdmap", "Tech-report extra: Fig.2-style comparison on BirdMap", ExtraBirdMap},
		{"extra-abalone", "Tech-report extra: Fig.4-style comparison on Abalone", ExtraAbalone},
		{"compare", "Hot path before/after: sufficient statistics vs full pass", CompareHotPath},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0)
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (known: %v)", id, ids)
}
