package experiments

import (
	"context"
	"github.com/crrlab/crr/internal/baseline"
)

// The paper's §VI-B1 notes that the Figure 2/3-style comparisons on BirdMap
// and Abalone are "reported in the full version technique report, owing to
// limited space". These two experiments regenerate them.

// ExtraBirdMap runs the Figure 2 roster on the BirdMap stand-in (time
// series: all methods apply).
func ExtraBirdMap(ctx context.Context, scale float64) ([]Row, error) {
	spec := BirdMapSpec()
	sizes := []int{
		scaled(1000, scale, 200), scaled(2000, scale, 400),
		scaled(4000, scale, 800), scaled(8000, scale, 1600),
	}
	roster := func() []baseline.Method {
		return []baseline.Method{
			crrFor(spec),
			&baseline.RegTree{RhoM: spec.RhoM, SplitAttrs: spec.CondAttrs},
			&baseline.EBLR{},
			&baseline.AR{},
			&baseline.SampLR{},
			&baseline.MCLR{},
			&baseline.Forest{Trees: 8},
			&baseline.DHR{Periods: []float64{365}},
			&baseline.Recur{},
		}
	}
	return scalabilitySweep(ctx, "extra-birdmap", spec, sizes, roster)
}

// ExtraAbalone runs the Figure 4 roster on the Abalone stand-in
// (relational: CRR, RegTree, SampLR, MCLR, as in the paper's Figure 4).
func ExtraAbalone(ctx context.Context, scale float64) ([]Row, error) {
	spec := AbaloneSpec()
	sizes := []int{
		scaled(1000, scale, 200), scaled(2000, scale, 400), scaled(4200, scale, 800),
	}
	roster := func() []baseline.Method {
		return []baseline.Method{
			crrFor(spec),
			&baseline.RegTree{RhoM: spec.RhoM, SplitAttrs: spec.CondAttrs},
			&baseline.SampLR{},
			&baseline.MCLR{},
		}
	}
	return scalabilitySweep(ctx, "extra-abalone", spec, sizes, roster)
}
