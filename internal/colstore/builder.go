package colstore

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/crrlab/crr/internal/dataset"
)

// BuilderOptions tunes a store build.
type BuilderOptions struct {
	// ChunkRows is the run length: numeric cells stream straight to their
	// lane files, while categorical codes are buffered per run and flushed
	// through the dictionary merge every ChunkRows rows. It bounds the
	// builder's resident state (per-run code buffers + run dictionaries) and
	// is the "spill to partitioned runs" knob for large categorical fans.
	// ≤ 0 selects DefaultChunkRows.
	ChunkRows int
}

// DefaultChunkRows is the default run length: 64k rows keeps a code buffer
// at 256 KiB per categorical column.
const DefaultChunkRows = 1 << 16

// Builder streams rows into a store directory. Numeric lanes and null
// bitmaps are written/accumulated incrementally; categorical columns are
// dict-coded per run with run-local dictionaries (the same smallDict linear
// probe → map promotion as the in-memory ColumnSet) and merged into the
// global first-appearance dictionary at each run flush. Codes already
// flushed in run N are global and final — dictionary growth in run N+1 only
// appends — which is exactly the cross-chunk code-stability contract the
// in-memory builder has, proven by the bitwise parity tests.
//
// A Builder is single-writer. On any error the builder is poisoned: further
// calls return the first error, and only Abort is useful.
type Builder struct {
	dir      string
	schema   *dataset.Schema
	chunk    int
	rows     int64
	inRun    int
	cols     []builderCol
	err      error
	finished bool
}

// builderCol is the per-column build state.
type builderCol struct {
	kind dataset.Kind
	// lane streaming
	path string
	f    *os.File
	w    *bufio.Writer
	crc  hash.Hash32
	// null bitmap, grown in memory (1 bit per row).
	nulls   []uint64
	hasNull bool
	// categorical global dictionary (first-appearance across the stream).
	dict   []string
	lookup map[string]uint32
	// categorical run state, reset at each flush.
	runDict  []string
	runLook  map[string]uint32
	runCodes []uint32
}

// NewBuilder creates the store directory (which must not already hold a
// store) and opens one lane file per schema attribute.
func NewBuilder(dir string, schema *dataset.Schema, opts BuilderOptions) (*Builder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("colstore: %s already holds a store", dir)
	}
	chunk := opts.ChunkRows
	if chunk <= 0 {
		chunk = DefaultChunkRows
	}
	b := &Builder{dir: dir, schema: schema, chunk: chunk, cols: make([]builderCol, schema.Len())}
	for a := 0; a < schema.Len(); a++ {
		col := &b.cols[a]
		col.kind = schema.Attr(a).Kind
		if col.kind == dataset.Numeric {
			col.path = fmt.Sprintf("col%d.f64", a)
		} else {
			col.path = fmt.Sprintf("col%d.codes", a)
			col.lookup = make(map[string]uint32)
		}
		f, err := os.Create(filepath.Join(dir, col.path))
		if err != nil {
			b.Abort()
			return nil, err
		}
		col.f = f
		col.w = bufio.NewWriterSize(f, 1<<16)
		col.crc = crc32.NewIEEE()
		// Header placeholder; the real one lands at Finish once count and
		// checksum are known.
		if _, err := col.w.Write(make([]byte, headerSize)); err != nil {
			b.Abort()
			return nil, err
		}
	}
	return b, nil
}

// Rows returns the number of rows appended so far.
func (b *Builder) Rows() int64 { return b.rows }

// Append streams one row into the store.
func (b *Builder) Append(t dataset.Tuple) error {
	if b.err != nil {
		return b.err
	}
	if b.finished {
		return fmt.Errorf("colstore: append after Finish")
	}
	if len(t) != b.schema.Len() {
		return b.poison(fmt.Errorf("%w: tuple arity %d, schema arity %d", dataset.ErrArityMismatch, len(t), b.schema.Len()))
	}
	row := b.rows
	var scratch [8]byte
	for a := range t {
		col := &b.cols[a]
		v := t[a]
		if col.kind == dataset.Numeric {
			// Raw Num under a null bit (Null() carries 0) — the exact cell
			// the in-memory ColumnSet stores, keeping lanes bitwise-parity.
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v.Num))
			if err := b.writeLane(col, scratch[:]); err != nil {
				return err
			}
			if v.Null {
				col.setNull(row)
			}
			continue
		}
		if v.Null {
			col.setNull(row)
			col.runCodes = append(col.runCodes, dataset.NullCode)
			continue
		}
		col.runCodes = append(col.runCodes, col.runCode(v.Str))
	}
	b.rows++
	b.inRun++
	if b.inRun >= b.chunk {
		if err := b.flushRun(); err != nil {
			return err
		}
	}
	return nil
}

// runCode assigns the run-local dictionary code of s, mirroring the
// in-memory probe discipline: linear scan while the run dictionary stays
// within smallDict, then a spilled map. (dataset.SmallDict is unexported;
// the threshold here must match it — the cross-threshold parity test pins
// the two together.)
const builderSmallDict = 16

func (col *builderCol) runCode(s string) uint32 {
	code, ok := uint32(0), false
	if col.runLook != nil {
		code, ok = col.runLook[s]
	} else {
		for j, v := range col.runDict {
			if v == s {
				code, ok = uint32(j), true
				break
			}
		}
	}
	if !ok {
		code = uint32(len(col.runDict))
		col.runDict = append(col.runDict, s)
		if col.runLook != nil {
			col.runLook[s] = code
		} else if len(col.runDict) > builderSmallDict {
			m := make(map[string]uint32, 2*len(col.runDict))
			for j, v := range col.runDict {
				m[v] = uint32(j)
			}
			col.runLook = m
		}
	}
	return code
}

// setNull marks row null in the in-memory bitmap.
func (col *builderCol) setNull(row int64) {
	col.hasNull = true
	word := int(row >> 6)
	for len(col.nulls) <= word {
		col.nulls = append(col.nulls, 0)
	}
	col.nulls[word] |= 1 << (uint64(row) & 63)
}

// flushRun merges every categorical column's run dictionary into its global
// dictionary (new values appended in run-local first-appearance order, which
// is global first-appearance order — no earlier run saw them) and writes the
// run's codes remapped to global, then resets the run state.
func (b *Builder) flushRun() error {
	if b.err != nil {
		return b.err
	}
	var scratch [4]byte
	for a := range b.cols {
		col := &b.cols[a]
		if col.kind != dataset.Categorical {
			continue
		}
		remap := make([]uint32, len(col.runDict))
		for local, v := range col.runDict {
			g, ok := col.lookup[v]
			if !ok {
				g = uint32(len(col.dict))
				col.dict = append(col.dict, v)
				col.lookup[v] = g
			}
			remap[local] = g
		}
		for _, c := range col.runCodes {
			g := dataset.NullCode
			if c != dataset.NullCode {
				g = remap[c]
			}
			binary.LittleEndian.PutUint32(scratch[:], g)
			if err := b.writeLane(col, scratch[:]); err != nil {
				return err
			}
		}
		col.runDict = col.runDict[:0]
		col.runLook = nil
		col.runCodes = col.runCodes[:0]
	}
	b.inRun = 0
	return nil
}

// writeLane appends payload bytes to a column's lane stream and checksum.
func (b *Builder) writeLane(col *builderCol, p []byte) error {
	if _, err := col.w.Write(p); err != nil {
		return b.poison(err)
	}
	col.crc.Write(p)
	return nil
}

// poison records the first error; the builder refuses further work.
func (b *Builder) poison(err error) error {
	if b.err == nil {
		b.err = err
	}
	return err
}

// AppendRelation streams every tuple of rel.
func (b *Builder) AppendRelation(rel *dataset.Relation) error {
	for _, t := range rel.Tuples {
		if err := b.Append(t); err != nil {
			return err
		}
	}
	return nil
}

// Finish flushes the final run, seals every lane file (final header with
// count and checksum), writes dictionaries and bitmaps, and lands the
// manifest last via temp-file + rename — the versioned-store discipline: a
// crash at any earlier point leaves a directory without a manifest, which
// Open rejects, never a half-store that parses.
func (b *Builder) Finish() error {
	if b.err != nil {
		return b.err
	}
	if b.finished {
		return fmt.Errorf("colstore: Finish called twice")
	}
	if err := b.flushRun(); err != nil {
		return err
	}
	b.finished = true
	man := manifest{Format: manifestFormat, Version: formatVersion, Rows: b.rows}
	words := (b.rows + 63) / 64
	for a := range b.cols {
		col := &b.cols[a]
		kind, laneKind := "numeric", uint32(laneF64)
		if col.kind == dataset.Categorical {
			kind, laneKind = "categorical", uint32(laneU32)
		}
		mc := manifestColumn{Name: b.schema.Attr(a).Name, Kind: kind, Lane: col.path}
		if err := b.sealLane(col, laneKind); err != nil {
			return err
		}
		if col.kind == dataset.Categorical {
			mc.Dict = fmt.Sprintf("col%d.dict", a)
			if err := b.writeDict(mc.Dict, col.dict); err != nil {
				return err
			}
		}
		if col.hasNull {
			mc.Nulls = fmt.Sprintf("col%d.nulls", a)
			bm := col.nulls
			for int64(len(bm)) < words {
				bm = append(bm, 0)
			}
			if err := b.writeBitmap(mc.Nulls, bm[:words]); err != nil {
				return err
			}
		}
		man.Columns = append(man.Columns, mc)
	}
	return b.writeManifest(man)
}

// sealLane flushes a lane stream and rewrites its header in place.
func (b *Builder) sealLane(col *builderCol, kind uint32) error {
	if err := col.w.Flush(); err != nil {
		return b.poison(err)
	}
	elem := uint64(8)
	if kind == laneU32 {
		elem = 4
	}
	h := header{kind: kind, count: uint64(b.rows), payloadLen: uint64(b.rows) * elem, crc: col.crc.Sum32()}
	if _, err := col.f.WriteAt(encodeHeader(h), 0); err != nil {
		return b.poison(err)
	}
	if err := col.f.Sync(); err != nil {
		return b.poison(err)
	}
	err := col.f.Close()
	col.f = nil
	if err != nil {
		return b.poison(err)
	}
	return nil
}

// writeDict writes one dictionary file: header + (u32 length, bytes) per
// entry in first-appearance order.
func (b *Builder) writeDict(name string, dict []string) error {
	var payload []byte
	var scratch [4]byte
	for _, s := range dict {
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(s)))
		payload = append(payload, scratch[:]...)
		payload = append(payload, s...)
	}
	h := header{kind: laneDict, count: uint64(len(dict)), payloadLen: uint64(len(payload)), crc: crc32.ChecksumIEEE(payload)}
	return b.writeSealed(name, h, payload)
}

// writeBitmap writes one null-bitmap file (count = row count).
func (b *Builder) writeBitmap(name string, words []uint64) error {
	payload := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(payload[i*8:], w)
	}
	h := header{kind: laneBitmap, count: uint64(b.rows), payloadLen: uint64(len(payload)), crc: crc32.ChecksumIEEE(payload)}
	return b.writeSealed(name, h, payload)
}

// writeSealed writes a complete small file (header + payload) and syncs it.
func (b *Builder) writeSealed(name string, h header, payload []byte) error {
	f, err := os.Create(filepath.Join(b.dir, name))
	if err != nil {
		return b.poison(err)
	}
	if _, err := f.Write(encodeHeader(h)); err == nil {
		_, err = f.Write(payload)
		if err == nil {
			err = f.Sync()
		}
	} else {
		f.Close()
		return b.poison(err)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return b.poison(err)
	}
	return nil
}

// writeManifest lands the manifest atomically: temp file, fsync, rename,
// directory fsync (best effort — not every filesystem supports it).
func (b *Builder) writeManifest(man manifest) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return b.poison(err)
	}
	tmp := filepath.Join(b.dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return b.poison(err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return b.poison(err)
	}
	if err := os.Rename(tmp, filepath.Join(b.dir, manifestName)); err != nil {
		os.Remove(tmp)
		return b.poison(err)
	}
	if d, err := os.Open(b.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Abort closes and removes everything the builder created. Safe to call at
// any point, including after a failed NewBuilder.
func (b *Builder) Abort() error {
	for a := range b.cols {
		col := &b.cols[a]
		if col.f != nil {
			col.f.Close()
			col.f = nil
		}
		if col.path != "" {
			os.Remove(filepath.Join(b.dir, col.path))
		}
		os.Remove(filepath.Join(b.dir, fmt.Sprintf("col%d.dict", a)))
		os.Remove(filepath.Join(b.dir, fmt.Sprintf("col%d.nulls", a)))
	}
	os.Remove(filepath.Join(b.dir, manifestName+".tmp"))
	os.Remove(filepath.Join(b.dir, manifestName))
	os.Remove(b.dir) // only if now empty
	b.finished = true
	if b.err == nil {
		b.err = fmt.Errorf("colstore: build aborted")
	}
	return nil
}

// Build writes rel into a new store at dir — the in-memory convenience
// wrapper over the streaming builder.
func Build(dir string, rel *dataset.Relation, chunkRows int) error {
	b, err := NewBuilder(dir, rel.Schema, BuilderOptions{ChunkRows: chunkRows})
	if err != nil {
		return err
	}
	if err := b.AppendRelation(rel); err != nil {
		b.Abort()
		return err
	}
	return b.Finish()
}

// BuildCSVFile converts a headered CSV file into a store without ever
// holding the relation in memory: pass one infers column kinds with exactly
// ReadCSV's rule (a column is Numeric when every non-empty cell parses as a
// float), pass two streams rows into the builder. Malformed input returns an
// error wrapping dataset.ErrMalformedCSV.
func BuildCSVFile(dir, csvPath string, chunkRows int) error {
	schema, err := inferCSVSchema(csvPath)
	if err != nil {
		return err
	}
	f, err := os.Open(csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	cr := csv.NewReader(f)
	if _, err := cr.Read(); err != nil { // header row, already validated
		return fmt.Errorf("%w: %v", dataset.ErrMalformedCSV, err)
	}
	b, err := NewBuilder(dir, schema, BuilderOptions{ChunkRows: chunkRows})
	if err != nil {
		return err
	}
	t := make(dataset.Tuple, schema.Len())
	for row := 1; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Abort()
			return fmt.Errorf("%w: %v", dataset.ErrMalformedCSV, err)
		}
		if len(rec) != schema.Len() {
			b.Abort()
			return fmt.Errorf("%w: row %d has %d cells, want %d", dataset.ErrMalformedCSV, row, len(rec), schema.Len())
		}
		for j, cell := range rec {
			cell = strings.TrimSpace(cell)
			switch {
			case cell == "":
				t[j] = dataset.Null()
			case schema.Attr(j).Kind == dataset.Numeric:
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					b.Abort()
					return fmt.Errorf("%w: row %d col %d: %v", dataset.ErrMalformedCSV, row, j, err)
				}
				t[j] = dataset.Num(v)
			default:
				t[j] = dataset.Str(cell)
			}
		}
		if err := b.Append(t); err != nil {
			b.Abort()
			return err
		}
	}
	return b.Finish()
}

// inferCSVSchema streams the file once to infer column kinds, mirroring
// ReadCSV: Numeric iff every non-empty trimmed cell parses as a float.
func inferCSVSchema(csvPath string) (*dataset.Schema, error) {
	f, err := os.Open(csvPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := csv.NewReader(f)
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", dataset.ErrMalformedCSV, err)
	}
	numeric := make([]bool, len(head))
	for j := range numeric {
		numeric[j] = true
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", dataset.ErrMalformedCSV, err)
		}
		for j, cell := range rec {
			if j >= len(numeric) || !numeric[j] {
				continue
			}
			cell = strings.TrimSpace(cell)
			if cell == "" {
				continue
			}
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				numeric[j] = false
			}
		}
	}
	attrs := make([]dataset.Attribute, len(head))
	for j, name := range head {
		kind := dataset.Categorical
		if numeric[j] {
			kind = dataset.Numeric
		}
		attrs[j] = dataset.Attribute{Name: name, Kind: kind}
	}
	return dataset.NewSchema(attrs...)
}
