package colstore_test

import (
	"context"
	"path/filepath"
	"testing"

	"github.com/crrlab/crr/internal/colstore"
	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/experiments"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// TestDiscoverOverStoreBitwise is the end-to-end out-of-core contract: mine
// rules from an mmap'd on-disk store (built with a small chunk budget, so
// the build really streams) and from the in-memory relation, and require the
// outputs bitwise-identical — conditions, ρ bits and model coefficients.
func TestDiscoverOverStoreBitwise(t *testing.T) {
	for _, spec := range []experiments.DatasetSpec{
		experiments.TaxSpec(), experiments.ElectricitySpec(), experiments.AbaloneSpec(),
		experiments.AirQualitySpec(), experiments.BirdMapSpec(),
	} {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			rel := spec.Gen(600)
			dir := filepath.Join(t.TempDir(), "store")
			if err := colstore.Build(dir, rel, 97); err != nil {
				t.Fatal(err)
			}
			st, err := colstore.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()

			preds := predicate.Generate(rel, spec.CondAttrs, predicate.GeneratorConfig{
				Kind: predicate.Binary, Size: 48, Seed: 17,
			})
			cfg := core.DiscoverConfig{
				XAttrs:  spec.XAttrs,
				YAttr:   spec.YAttr,
				RhoM:    spec.RhoM,
				Preds:   preds,
				Trainer: regress.LinearTrainer{},
			}
			memRes, err := core.Discover(context.Background(), rel, core.WithConfig(cfg))
			if err != nil {
				t.Fatal(err)
			}
			stRes, err := core.DiscoverColumns(context.Background(), st.Columns(), core.WithConfig(cfg))
			if err != nil {
				t.Fatal(err)
			}
			if !experiments.SameRules(memRes.Rules, stRes.Rules, 0) {
				t.Fatal("in-memory and store-backed discovery output not bitwise-identical")
			}
			if memRes.Stats != stRes.Stats {
				t.Fatalf("stats diverged: memory %+v, store %+v", memRes.Stats, stRes.Stats)
			}
		})
	}
}
