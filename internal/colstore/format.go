// Package colstore is the out-of-core columnar store: an on-disk,
// memory-mapped lane format that feeds the discovery engine past RAM. A
// store is a directory holding one file per column — little-endian []float64
// lanes for numeric attributes, dict-coded []uint32 lanes plus a dictionary
// file for categorical attributes, and a 1-bit-per-row null bitmap per
// nullable column — described by a versioned JSON manifest written last
// (temp-file + rename), so a crashed build is never mistaken for a store.
//
// Every file opens with the same 64-byte header: magic, format version, lane
// kind, element count, payload length and an IEEE CRC-32 of the payload.
// The payload starts at byte 64 of a page-aligned mapping, so []float64 /
// []uint32 / []uint64 views of the mapped bytes are always aligned.
//
// Open maps each lane read-only and adopts them into a dataset.ColumnSet
// via dataset.AdoptColumnSet — the lanes are written pre-normalized to the
// exact in-memory representation (raw Nums under null bits, NullCode +
// bitmap bit for null categorical cells, first-appearance dictionary order),
// so every downstream consumer (vectorized filters, share scan, Gram
// accumulation) is bitwise-identical to the heap path. Dictionary and
// bitmap payloads are checksummed at open; bulk lanes are checksummed on
// demand (OpenOptions.VerifyChecksums or Store.Verify) so opening a
// multi-gigabyte store stays O(small).
package colstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

const (
	// magic opens every lane file.
	magic = "CRRC"
	// formatVersion is the store format version, bumped on layout changes.
	formatVersion = 1
	// headerSize is the fixed header length; payloads start here. 64 keeps
	// every fixed-width payload 8-byte aligned within a page-aligned mapping.
	headerSize = 64
	// manifestName is the store descriptor, written last.
	manifestName = "manifest.json"
	// manifestFormat guards against pointing Open at some other JSON.
	manifestFormat = "crr-colstore"
)

// Lane kinds (header field).
const (
	laneF64    = 1 // []float64 little-endian, count elements
	laneU32    = 2 // []uint32 little-endian, count elements
	laneDict   = 3 // count entries of u32 byte-length + UTF-8 bytes
	laneBitmap = 4 // []uint64 little-endian words, count = row count
)

// ErrCorrupt is wrapped by every open/decode failure caused by the store's
// on-disk state (truncation, bad magic, checksum mismatch, impossible
// declared lengths). Callers distinguish "the store is damaged" from
// in-process misuse with errors.Is.
var ErrCorrupt = errors.New("colstore: corrupt store")

// ErrVersion is wrapped when a store declares a format version this build
// does not read — its own class, distinct from ErrCorrupt, so migration
// tooling can tell "too new" from "damaged".
var ErrVersion = errors.New("colstore: unsupported format version")

// header is the decoded fixed header of one lane file.
type header struct {
	kind       uint32
	count      uint64
	payloadLen uint64
	crc        uint32
}

// encodeHeader renders h into a headerSize buffer.
func encodeHeader(h header) []byte {
	buf := make([]byte, headerSize)
	copy(buf[0:4], magic)
	binary.LittleEndian.PutUint32(buf[4:8], formatVersion)
	binary.LittleEndian.PutUint32(buf[8:12], h.kind)
	// buf[12:16] reserved, zero.
	binary.LittleEndian.PutUint64(buf[16:24], h.count)
	binary.LittleEndian.PutUint64(buf[24:32], h.payloadLen)
	binary.LittleEndian.PutUint32(buf[32:36], h.crc)
	return buf
}

// decodeHeader validates the fixed header of one lane file against the
// actual file size. It never allocates proportionally to declared lengths —
// oversize declarations are rejected against fileSize first.
func decodeHeader(b []byte, fileSize int64, wantKind uint32) (header, error) {
	if len(b) < headerSize {
		return header{}, fmt.Errorf("%w: %d-byte file shorter than the %d-byte header", ErrCorrupt, len(b), headerSize)
	}
	if string(b[0:4]) != magic {
		return header{}, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[0:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:8]); v != formatVersion {
		return header{}, fmt.Errorf("%w: %d (this build reads %d)", ErrVersion, v, formatVersion)
	}
	h := header{
		kind:       binary.LittleEndian.Uint32(b[8:12]),
		count:      binary.LittleEndian.Uint64(b[16:24]),
		payloadLen: binary.LittleEndian.Uint64(b[24:32]),
		crc:        binary.LittleEndian.Uint32(b[32:36]),
	}
	if h.kind != wantKind {
		return header{}, fmt.Errorf("%w: lane kind %d, want %d", ErrCorrupt, h.kind, wantKind)
	}
	if h.payloadLen != uint64(fileSize)-headerSize {
		return header{}, fmt.Errorf("%w: declared payload %d bytes, file holds %d", ErrCorrupt, h.payloadLen, fileSize-headerSize)
	}
	var elem uint64
	switch h.kind {
	case laneF64, laneBitmap:
		elem = 8
	case laneU32:
		elem = 4
	}
	if elem != 0 {
		// Cap count before any arithmetic so a hostile header cannot
		// overflow the size computation (2^56 rows is far past any real
		// store and keeps count*8 within uint64).
		if h.count > 1<<56 {
			return header{}, fmt.Errorf("%w: header declares %d elements", ErrCorrupt, h.count)
		}
		want := h.count * elem
		if h.kind == laneBitmap {
			want = (h.count + 63) / 64 * 8
		}
		if want != h.payloadLen {
			return header{}, fmt.Errorf("%w: %d elements of kind %d need %d payload bytes, header declares %d", ErrCorrupt, h.count, h.kind, want, h.payloadLen)
		}
	}
	return h, nil
}

// checkCRC verifies payload against the header checksum.
func checkCRC(h header, payload []byte, name string) error {
	if got := crc32.ChecksumIEEE(payload); got != h.crc {
		return fmt.Errorf("%w: %s checksum %08x, header declares %08x", ErrCorrupt, name, got, h.crc)
	}
	return nil
}

// decodeDict parses a dictionary payload: count entries of u32 length +
// bytes. Allocation is capped by the actual payload size (count ≤ len/4 or
// the header was already rejected), so a hostile header cannot force an
// over-allocation.
func decodeDict(h header, payload []byte) ([]string, error) {
	if h.count > uint64(len(payload))/4+1 {
		return nil, fmt.Errorf("%w: dictionary declares %d entries in %d payload bytes", ErrCorrupt, h.count, len(payload))
	}
	dict := make([]string, 0, h.count)
	off := 0
	for i := uint64(0); i < h.count; i++ {
		if len(payload)-off < 4 {
			return nil, fmt.Errorf("%w: dictionary entry %d truncated at byte %d", ErrCorrupt, i, off)
		}
		n := int(binary.LittleEndian.Uint32(payload[off : off+4]))
		off += 4
		if n < 0 || n > len(payload)-off {
			return nil, fmt.Errorf("%w: dictionary entry %d declares %d bytes, %d remain", ErrCorrupt, i, n, len(payload)-off)
		}
		// Copy out of the mapping: dictionary strings outlive chunk scans and
		// must not dangle into an unmapped region after Close.
		dict = append(dict, string(payload[off:off+n]))
		off += n
	}
	if off != len(payload) {
		return nil, fmt.Errorf("%w: dictionary has %d trailing bytes", ErrCorrupt, len(payload)-off)
	}
	return dict, nil
}

// manifest is the store descriptor.
type manifest struct {
	Format  string           `json:"format"`
	Version int              `json:"version"`
	Rows    int64            `json:"rows"`
	Columns []manifestColumn `json:"columns"`
}

// manifestColumn names one column's files. Nulls is empty when the column
// has no null cell; Dict is set only for categorical columns.
type manifestColumn struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"` // "numeric" | "categorical"
	Lane  string `json:"lane"`
	Dict  string `json:"dict,omitempty"`
	Nulls string `json:"nulls,omitempty"`
}
