package colstore

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"unsafe"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/telemetry"
)

// OpenOptions tunes Open.
type OpenOptions struct {
	// VerifyChecksums forces a full CRC pass over every lane at open,
	// reading the whole store. Off by default: dictionaries and bitmaps are
	// always verified (they are small and fully decoded anyway), bulk lanes
	// only on demand — see Store.Verify.
	VerifyChecksums bool
	// Telemetry receives colstore.bytes_mapped at open and
	// colstore.chunks_scanned per ScanChunks chunk; nil disables.
	Telemetry *telemetry.Registry
}

// Store is an opened, memory-mapped column store. Its ColumnSet aliases the
// mapped lanes: it is valid until Close, and must not be used afterwards.
// A Store is immutable and safe for concurrent readers.
type Store struct {
	dir    string
	schema *dataset.Schema
	rows   int
	cols   *dataset.ColumnSet
	maps   []*mapping
	lanes  []laneRef
	chunks *telemetry.Counter
}

// laneRef remembers one mapped file for the on-demand checksum pass.
type laneRef struct {
	name    string
	h       header
	payload []byte
}

// Open maps the store at dir. See OpenWith for options.
func Open(dir string) (*Store, error) { return OpenWith(dir, OpenOptions{}) }

// OpenWith maps the store at dir read-only, validates every header, decodes
// and checksums dictionaries and null bitmaps, bounds-checks every code lane
// against its dictionary, and adopts the lanes into a ColumnSet. Damaged
// stores return errors wrapping ErrCorrupt (or ErrVersion); nothing in the
// open path panics or allocates proportionally to hostile declared sizes.
func OpenWith(dir string, opts OpenOptions) (st *Store, err error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("colstore: %s is not a store (no readable manifest): %w", dir, err)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	if man.Format != manifestFormat {
		return nil, fmt.Errorf("%w: manifest format %q", ErrCorrupt, man.Format)
	}
	if man.Version != formatVersion {
		return nil, fmt.Errorf("%w: %d (this build reads %d)", ErrVersion, man.Version, formatVersion)
	}
	if man.Rows < 0 || int64(int(man.Rows)) != man.Rows {
		return nil, fmt.Errorf("%w: manifest declares %d rows", ErrCorrupt, man.Rows)
	}
	rows := int(man.Rows)

	attrs := make([]dataset.Attribute, len(man.Columns))
	for i, mc := range man.Columns {
		kind := dataset.Numeric
		switch mc.Kind {
		case "numeric":
		case "categorical":
			kind = dataset.Categorical
		default:
			return nil, fmt.Errorf("%w: column %q has kind %q", ErrCorrupt, mc.Name, mc.Kind)
		}
		attrs[i] = dataset.Attribute{Name: mc.Name, Kind: kind}
	}
	schema, err := dataset.NewSchema(attrs...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	s := &Store{
		dir:    dir,
		schema: schema,
		rows:   rows,
		chunks: opts.Telemetry.Counter(telemetry.MetricColstoreChunksScanned),
	}
	defer func() {
		if err != nil {
			s.Close()
		}
	}()

	var mapped int64
	assembled := make([]dataset.AssembledColumn, len(man.Columns))
	for a, mc := range man.Columns {
		var col dataset.AssembledColumn
		if attrs[a].Kind == dataset.Numeric {
			h, payload, err := s.mapLane(mc.Lane, laneF64, uint64(rows))
			if err != nil {
				return nil, err
			}
			col.Floats = f64View(payload, rows)
			mapped += int64(len(payload))
			if opts.VerifyChecksums {
				if err := checkCRC(h, payload, mc.Lane); err != nil {
					return nil, err
				}
			}
		} else {
			h, payload, err := s.mapLane(mc.Lane, laneU32, uint64(rows))
			if err != nil {
				return nil, err
			}
			col.Codes = u32View(payload, rows)
			mapped += int64(len(payload))
			if opts.VerifyChecksums {
				if err := checkCRC(h, payload, mc.Lane); err != nil {
					return nil, err
				}
			}
			if mc.Dict == "" {
				return nil, fmt.Errorf("%w: categorical column %q has no dictionary file", ErrCorrupt, mc.Name)
			}
			dh, dpayload, err := s.mapLane(mc.Dict, laneDict, 0)
			if err != nil {
				return nil, err
			}
			// Dictionaries are small and fully decoded: always checksum.
			if err := checkCRC(dh, dpayload, mc.Dict); err != nil {
				return nil, err
			}
			col.Dict, err = decodeDict(dh, dpayload)
			if err != nil {
				return nil, err
			}
			mapped += int64(len(dpayload))
		}
		if mc.Nulls != "" {
			nh, npayload, err := s.mapLane(mc.Nulls, laneBitmap, uint64(rows))
			if err != nil {
				return nil, err
			}
			if err := checkCRC(nh, npayload, mc.Nulls); err != nil {
				return nil, err
			}
			col.Nulls = u64View(npayload, (rows+63)/64)
			mapped += int64(len(npayload))
		}
		assembled[a] = col
	}
	// AdoptColumnSet validates the representation invariants without writing
	// to the read-only lanes (NullCode ⇔ bitmap bit, codes within the
	// dictionary, clean trailing bitmap bits) — the lane-integrity scan of
	// the open path.
	cs, err := dataset.AdoptColumnSet(schema, rows, assembled)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	s.cols = cs
	opts.Telemetry.Counter(telemetry.MetricColstoreBytesMapped).Add(mapped)
	return s, nil
}

// mapLane maps one store file and validates its header. wantCount 0 skips
// the element-count check (dictionaries declare their own entry count).
func (s *Store) mapLane(name string, kind uint32, wantCount uint64) (header, []byte, error) {
	if name != filepath.Base(name) || name == "." || name == ".." {
		return header{}, nil, fmt.Errorf("%w: manifest references path %q", ErrCorrupt, name)
	}
	path := filepath.Join(s.dir, name)
	st, err := os.Stat(path)
	if err != nil {
		return header{}, nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, name, err)
	}
	m, err := mapFile(path)
	if err != nil {
		return header{}, nil, err
	}
	s.maps = append(s.maps, m)
	h, err := decodeHeader(m.data, st.Size(), kind)
	if err != nil {
		return header{}, nil, fmt.Errorf("%s: %w", name, err)
	}
	if wantCount != 0 || kind != laneDict {
		if h.count != wantCount {
			return header{}, nil, fmt.Errorf("%w: %s holds %d elements, manifest declares %d rows", ErrCorrupt, name, h.count, wantCount)
		}
	}
	payload := m.data[headerSize:]
	s.lanes = append(s.lanes, laneRef{name: name, h: h, payload: payload})
	return h, payload, nil
}

// Schema returns the store schema.
func (s *Store) Schema() *dataset.Schema { return s.schema }

// Rows returns the row count.
func (s *Store) Rows() int { return s.rows }

// Columns returns the ColumnSet over the mapped lanes. It is the direct
// input to predicate filters, discovery (core.WithColumnStore) and chunked
// scans; valid until Close.
func (s *Store) Columns() *dataset.ColumnSet { return s.cols }

// Verify re-checksums every mapped file against its header — the full-read
// integrity pass Open skips for bulk lanes. ctx cancels between lanes.
func (s *Store) Verify(ctx context.Context) error {
	for _, l := range s.lanes {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := checkCRC(l.h, l.payload, l.name); err != nil {
			return err
		}
	}
	return nil
}

// ScanChunks calls fn(lo, hi) over consecutive row ranges of at most
// chunkRows rows, in row order — the chunked-scan contract: every consumer
// that streams the store (trainable-row sweeps, predicate FilterRange,
// Gram accumulation) visits rows through ranges like these, touching one
// chunk's pages at a time. chunkRows ≤ 0 selects DefaultChunkRows. Each
// chunk visit bumps colstore.chunks_scanned.
func (s *Store) ScanChunks(chunkRows int, fn func(lo, hi int) error) error {
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	for lo := 0; lo < s.rows; lo += chunkRows {
		hi := lo + chunkRows
		if hi > s.rows {
			hi = s.rows
		}
		s.chunks.Inc()
		if err := fn(lo, hi); err != nil {
			return err
		}
	}
	return nil
}

// Close unmaps every lane. The ColumnSet returned by Columns (and anything
// still aliasing it) must not be used after Close.
func (s *Store) Close() error {
	var first error
	for _, m := range s.maps {
		if err := m.close(); err != nil && first == nil {
			first = err
		}
	}
	s.maps = nil
	s.lanes = nil
	s.cols = nil
	return first
}

// f64View reinterprets an 8-byte-aligned little-endian payload as a
// []float64 without copying. Mapped payloads start at byte 64 of a
// page-aligned mapping, so they are always aligned; a misaligned heap
// fallback (or a big-endian platform) decodes into a fresh slice instead.
func f64View(b []byte, n int) []float64 {
	if n == 0 {
		return []float64{}
	}
	if littleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// u32View reinterprets a payload as []uint32; see f64View.
func u32View(b []byte, n int) []uint32 {
	if n == 0 {
		return []uint32{}
	}
	if littleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

// u64View reinterprets a payload as []uint64; see f64View.
func u64View(b []byte, n int) []uint64 {
	if n == 0 {
		return []uint64{}
	}
	if littleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

// littleEndian reports the host byte order, decided once at init.
var littleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()
