//go:build !unix

package colstore

import "os"

// mapping on platforms without syscall.Mmap support degrades to a heap read:
// the store still opens and every parity guarantee holds, only the
// past-RAM property is lost.
type mapping struct {
	data   []byte
	mapped bool
}

func mapFile(path string) (*mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &mapping{data: data}, nil
}

func (m *mapping) close() error {
	m.data = nil
	return nil
}
