package colstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/telemetry"
)

// testRelation builds a relation exercising every lane type: nullable
// numerics, a small-dictionary categorical, and a wide categorical whose
// dictionary crosses the smallDict probe→map promotion threshold.
func testRelation(n int, seed int64) *dataset.Relation {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "x", Kind: dataset.Numeric},
		dataset.Attribute{Name: "y", Kind: dataset.Numeric},
		dataset.Attribute{Name: "cat", Kind: dataset.Categorical},
		dataset.Attribute{Name: "wide", Kind: dataset.Categorical},
	)
	rng := rand.New(rand.NewSource(seed))
	rel := dataset.NewRelation(schema)
	for i := 0; i < n; i++ {
		t := dataset.Tuple{
			dataset.Num(rng.NormFloat64()),
			dataset.Num(rng.NormFloat64() * 10),
			dataset.Str([]string{"a", "b", "c"}[rng.Intn(3)]),
			dataset.Str(fmt.Sprintf("w%02d", rng.Intn(40))),
		}
		if rng.Intn(9) == 0 {
			t[0] = dataset.Null()
		}
		if rng.Intn(11) == 0 {
			t[2] = dataset.Null()
		}
		rel.MustAppend(t)
	}
	return rel
}

// sameColumns asserts bitwise lane identity between a store-backed
// ColumnSet and the in-memory mirror: values, codes, dictionary order and
// null bits.
func sameColumns(t *testing.T, got, want *dataset.ColumnSet) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("rows %d, want %d", got.Len(), want.Len())
	}
	for a := 0; a < want.Schema.Len(); a++ {
		gd, wd := got.Dict(a), want.Dict(a)
		if len(gd) != len(wd) {
			t.Fatalf("attr %d: dict %d vs %d entries", a, len(gd), len(wd))
		}
		for i := range wd {
			if gd[i] != wd[i] {
				t.Fatalf("attr %d dict[%d]: %q vs %q (first-appearance order broken)", a, i, gd[i], wd[i])
			}
		}
		if got.HasNulls(a) != want.HasNulls(a) {
			t.Fatalf("attr %d: HasNulls %v vs %v", a, got.HasNulls(a), want.HasNulls(a))
		}
		for r := 0; r < want.Len(); r++ {
			if want.Schema.Attr(a).Kind == dataset.Numeric {
				if math.Float64bits(got.Float(a)[r]) != math.Float64bits(want.Float(a)[r]) {
					t.Fatalf("attr %d row %d: %v vs %v", a, r, got.Float(a)[r], want.Float(a)[r])
				}
			} else if got.Codes(a)[r] != want.Codes(a)[r] {
				t.Fatalf("attr %d row %d: code %d vs %d", a, r, got.Codes(a)[r], want.Codes(a)[r])
			}
			if got.IsNull(a, r) != want.IsNull(a, r) {
				t.Fatalf("attr %d row %d: null %v vs %v", a, r, got.IsNull(a, r), want.IsNull(a, r))
			}
		}
	}
}

// TestStoreRoundTrip: build → open must reproduce the in-memory ColumnSet
// bitwise, for chunk sizes that split dictionaries mid-file.
func TestStoreRoundTrip(t *testing.T) {
	rel := testRelation(1000, 7)
	want := dataset.NewColumnSet(rel)
	for _, chunk := range []int{0, 1, 7, 64, 333, 5000} {
		dir := filepath.Join(t.TempDir(), "store")
		if err := Build(dir, rel, chunk); err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		st, err := OpenWith(dir, OpenOptions{VerifyChecksums: true})
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		sameColumns(t, st.Columns(), want)
		if err := st.Verify(context.Background()); err != nil {
			t.Fatalf("chunk %d verify: %v", chunk, err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("chunk %d close: %v", chunk, err)
		}
	}
}

// TestChunkInvariance: the on-disk bytes must not depend on the run length —
// dictionary merge order is first-appearance regardless of chunking, so two
// builds of the same rows with different ChunkRows are byte-identical.
func TestChunkInvariance(t *testing.T) {
	rel := testRelation(700, 3)
	base := t.TempDir()
	dirA, dirB := filepath.Join(base, "a"), filepath.Join(base, "b")
	if err := Build(dirA, rel, 10); err != nil {
		t.Fatal(err)
	}
	if err := Build(dirB, rel, 100000); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		a, err := os.ReadFile(filepath.Join(dirA, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, e.Name()))
		if err != nil {
			t.Fatalf("%s missing in second build: %v", e.Name(), err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between chunk sizes", e.Name())
		}
	}
}

// TestDictGrowsAcrossChunks is the cross-chunk code-stability regression
// test: with a 5-row run length and a stream whose dictionary crosses the
// probe→map promotion threshold mid-file, codes assigned in early chunks
// must stay stable and the final dictionary must be global first-appearance.
func TestDictGrowsAcrossChunks(t *testing.T) {
	schema := dataset.MustSchema(dataset.Attribute{Name: "c", Kind: dataset.Categorical})
	rel := dataset.NewRelation(schema)
	// 50 distinct values (> smallDict 16), interleaved with repeats of the
	// earliest values so early codes are re-emitted after later chunks have
	// grown the dictionary past the promotion threshold.
	for i := 0; i < 400; i++ {
		v := fmt.Sprintf("v%02d", i%50)
		if i%7 == 0 {
			v = "v00"
		}
		rel.MustAppend(dataset.Tuple{dataset.Str(v)})
	}
	dir := filepath.Join(t.TempDir(), "store")
	if err := Build(dir, rel, 5); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sameColumns(t, st.Columns(), dataset.NewColumnSet(rel))
}

// TestZeroAndTinyStores: empty and single-row stores open cleanly.
func TestZeroAndTinyStores(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "x", Kind: dataset.Numeric},
		dataset.Attribute{Name: "c", Kind: dataset.Categorical},
	)
	for _, n := range []int{0, 1} {
		rel := dataset.NewRelation(schema)
		for i := 0; i < n; i++ {
			rel.MustAppend(dataset.Tuple{dataset.Num(1), dataset.Str("a")})
		}
		dir := filepath.Join(t.TempDir(), "store")
		if err := Build(dir, rel, 0); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		st, err := Open(dir)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if st.Rows() != n {
			t.Fatalf("n=%d: rows %d", n, st.Rows())
		}
		st.Close()
	}
}

// TestBuildCSVFileParity: streaming a CSV into a store must agree bitwise
// with reading the same CSV into memory (same kind inference, same lanes).
func TestBuildCSVFileParity(t *testing.T) {
	rel := testRelation(500, 13)
	base := t.TempDir()
	csvPath := filepath.Join(base, "data.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, rel); err != nil {
		t.Fatal(err)
	}
	f.Close()

	raw, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dataset.ReadCSV(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(base, "store")
	if err := BuildCSVFile(dir, csvPath, 37); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for a := 0; a < want.Schema.Len(); a++ {
		if st.Schema().Attr(a) != want.Schema.Attr(a) {
			t.Fatalf("attr %d: %+v vs %+v", a, st.Schema().Attr(a), want.Schema.Attr(a))
		}
	}
	sameColumns(t, st.Columns(), dataset.NewColumnSet(want))
}

// TestBuildCSVFileMalformed: corrupt CSV input must return the dataset
// sentinel and leave no store behind.
func TestBuildCSVFileMalformed(t *testing.T) {
	base := t.TempDir()
	csvPath := filepath.Join(base, "bad.csv")
	if err := os.WriteFile(csvPath, []byte("a,b\n1,2\n3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(base, "store")
	if err := BuildCSVFile(dir, csvPath, 0); !errors.Is(err, dataset.ErrMalformedCSV) {
		t.Fatalf("got %v, want ErrMalformedCSV", err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("aborted build left an openable store")
	}
}

// TestScanChunksAndFilterRange: chunked predicate scans over mapped lanes
// must agree with a one-shot filter over the full selection, and the chunk
// counter must reflect the visits.
func TestScanChunksAndFilterRange(t *testing.T) {
	rel := testRelation(1000, 21)
	dir := filepath.Join(t.TempDir(), "store")
	if err := Build(dir, rel, 128); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	st, err := OpenWith(dir, OpenOptions{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cs := st.Columns()
	p := predicate.NumPred(0, predicate.Gt, 0)
	want := p.Filter(cs, cs.View().Sel, nil)
	var got, buf []int
	if err := st.ScanChunks(100, func(lo, hi int) error {
		buf = p.FilterRange(cs, lo, hi, buf)
		got = append(got, buf...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("chunked scan: %d rows vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chunked scan row %d: %d vs %d", i, got[i], want[i])
		}
	}
	if n := reg.Counter(telemetry.MetricColstoreChunksScanned).Value(); n != 10 {
		t.Fatalf("chunks_scanned %d, want 10", n)
	}
	if b := reg.Counter(telemetry.MetricColstoreBytesMapped).Value(); b <= 0 {
		t.Fatalf("bytes_mapped %d", b)
	}
}

// TestOpenRejectsDamage: every class of on-disk damage must error with
// ErrCorrupt (or ErrVersion), never panic.
func TestOpenRejectsDamage(t *testing.T) {
	rel := testRelation(200, 5)
	build := func(t *testing.T) string {
		dir := filepath.Join(t.TempDir(), "store")
		if err := Build(dir, rel, 64); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	damage := []struct {
		name string
		hit  func(t *testing.T, dir string)
		want error
	}{
		{"missing manifest", func(t *testing.T, dir string) {
			os.Remove(filepath.Join(dir, manifestName))
		}, nil},
		{"manifest junk", func(t *testing.T, dir string) {
			os.WriteFile(filepath.Join(dir, manifestName), []byte("{"), 0o644)
		}, ErrCorrupt},
		{"wrong format", func(t *testing.T, dir string) {
			os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"format":"nope","version":1}`), 0o644)
		}, ErrCorrupt},
		{"future version", func(t *testing.T, dir string) {
			man, _ := os.ReadFile(filepath.Join(dir, manifestName))
			os.WriteFile(filepath.Join(dir, manifestName),
				bytes.Replace(man, []byte(`"version": 1`), []byte(`"version": 99`), 1), 0o644)
		}, ErrVersion},
		{"truncated lane", func(t *testing.T, dir string) {
			path := filepath.Join(dir, "col0.f64")
			st, _ := os.Stat(path)
			os.Truncate(path, st.Size()-8)
		}, ErrCorrupt},
		{"truncated below header", func(t *testing.T, dir string) {
			os.Truncate(filepath.Join(dir, "col0.f64"), 10)
		}, ErrCorrupt},
		{"bad magic", func(t *testing.T, dir string) {
			flipBytes(t, filepath.Join(dir, "col2.codes"), 0)
		}, ErrCorrupt},
		{"dict checksum", func(t *testing.T, dir string) {
			st, _ := os.Stat(filepath.Join(dir, "col2.dict"))
			flipBytes(t, filepath.Join(dir, "col2.dict"), st.Size()-1)
		}, ErrCorrupt},
		{"bitmap checksum", func(t *testing.T, dir string) {
			st, _ := os.Stat(filepath.Join(dir, "col0.nulls"))
			flipBytes(t, filepath.Join(dir, "col0.nulls"), st.Size()-1)
		}, ErrCorrupt},
		{"code out of dictionary", func(t *testing.T, dir string) {
			// Overwrite a code cell with a huge value; the dict-bounds scan
			// at open must reject it (the lane CRC is not read by default).
			f, err := os.OpenFile(filepath.Join(dir, "col2.codes"), os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			f.WriteAt([]byte{0xfe, 0xff, 0xff, 0x7f}, headerSize)
			f.Close()
		}, ErrCorrupt},
		{"manifest escapes dir", func(t *testing.T, dir string) {
			man, _ := os.ReadFile(filepath.Join(dir, manifestName))
			os.WriteFile(filepath.Join(dir, manifestName),
				bytes.Replace(man, []byte(`"col0.f64"`), []byte(`"../col0.f64"`), 1), 0o644)
		}, ErrCorrupt},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			dir := build(t)
			d.hit(t, dir)
			_, err := Open(dir)
			if err == nil {
				t.Fatal("damaged store opened")
			}
			if d.want != nil && !errors.Is(err, d.want) {
				t.Fatalf("got %v, want %v", err, d.want)
			}
		})
	}
}

// TestLaneChecksumOnDemand: a flipped byte deep in a numeric lane passes the
// default open (headers only) but must be caught by VerifyChecksums and by
// Store.Verify.
func TestLaneChecksumOnDemand(t *testing.T) {
	rel := testRelation(300, 9)
	dir := filepath.Join(t.TempDir(), "store")
	if err := Build(dir, rel, 64); err != nil {
		t.Fatal(err)
	}
	flipBytes(t, filepath.Join(dir, "col1.f64"), headerSize+40)
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("default open should not read lane payloads: %v", err)
	}
	if err := st.Verify(context.Background()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify: got %v, want ErrCorrupt", err)
	}
	st.Close()
	if _, err := OpenWith(dir, OpenOptions{VerifyChecksums: true}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("VerifyChecksums open: got %v, want ErrCorrupt", err)
	}
}

// TestBuilderArity: a bad tuple poisons the build with the dataset sentinel.
func TestBuilderArity(t *testing.T) {
	schema := dataset.MustSchema(dataset.Attribute{Name: "x", Kind: dataset.Numeric})
	dir := filepath.Join(t.TempDir(), "store")
	b, err := NewBuilder(dir, schema, BuilderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Append(dataset.Tuple{dataset.Num(1), dataset.Num(2)}); !errors.Is(err, dataset.ErrArityMismatch) {
		t.Fatalf("got %v, want ErrArityMismatch", err)
	}
	if err := b.Finish(); err == nil {
		t.Fatal("poisoned builder finished")
	}
	b.Abort()
}

// TestDoubleBuildRejected: pointing a builder at an existing store fails
// instead of silently clobbering it.
func TestDoubleBuildRejected(t *testing.T) {
	rel := testRelation(10, 1)
	dir := filepath.Join(t.TempDir(), "store")
	if err := Build(dir, rel, 0); err != nil {
		t.Fatal(err)
	}
	if err := Build(dir, rel, 0); err == nil || !strings.Contains(err.Error(), "already holds") {
		t.Fatalf("got %v", err)
	}
}

// flipBytes XORs one byte of a file at offset.
func flipBytes(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}
