package colstore

import (
	"context"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzColstoreOpen feeds hostile bytes into the store open path: the fuzzer
// controls the manifest, a lane file, a dictionary file and a bitmap file.
// Open must either succeed or return an error — it must never panic, and a
// hostile header must never force an allocation proportional to its declared
// (rather than actual) size. Truncation, bad magic, checksum damage and
// oversize declared lengths all funnel through here.
func FuzzColstoreOpen(f *testing.F) {
	// Seed with a well-formed single-column store, then variants the
	// mutator can splice.
	man := []byte(`{"format":"crr-colstore","version":1,"rows":2,"columns":[` +
		`{"name":"x","kind":"numeric","lane":"col0.f64","nulls":"col0.nulls"},` +
		`{"name":"c","kind":"categorical","lane":"col1.codes","dict":"col1.dict"}]}`)
	lane := func(kind uint32, count uint64, payload []byte) []byte {
		h := header{kind: kind, count: count, payloadLen: uint64(len(payload)), crc: crc32.ChecksumIEEE(payload)}
		return append(encodeHeader(h), payload...)
	}
	f64lane := lane(laneF64, 2, []byte{0, 0, 0, 0, 0, 0, 240, 63, 0, 0, 0, 0, 0, 0, 0, 64})
	bitmap := lane(laneBitmap, 2, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	codes := lane(laneU32, 2, []byte{0, 0, 0, 0, 1, 0, 0, 0})
	dictPayload := []byte{1, 0, 0, 0, 'a', 1, 0, 0, 0, 'b'}
	dict := lane(laneDict, 2, dictPayload)
	f.Add(man, f64lane, codes, dict, bitmap)
	// Oversize declared dictionary count.
	badDict := make([]byte, len(dict))
	copy(badDict, dict)
	binary.LittleEndian.PutUint64(badDict[16:24], 1<<40)
	f.Add(man, f64lane, codes, badDict, bitmap)
	// Truncations and a bad magic.
	f.Add(man, f64lane[:headerSize-1], codes, dict, bitmap)
	f.Add(man[:20], f64lane, codes, dict, bitmap)
	corrupt := append([]byte("XXXX"), f64lane[4:]...)
	f.Add(man, corrupt, codes, dict, bitmap)

	f.Fuzz(func(t *testing.T, manifest, laneF64File, codesFile, dictFile, bitmapFile []byte) {
		dir := t.TempDir()
		writeIf := func(name string, b []byte) {
			if len(b) > 0 {
				os.WriteFile(filepath.Join(dir, name), b, 0o644)
			}
		}
		writeIf(manifestName, manifest)
		writeIf("col0.f64", laneF64File)
		writeIf("col0.nulls", bitmapFile)
		writeIf("col1.codes", codesFile)
		writeIf("col1.dict", dictFile)
		st, err := Open(dir)
		if err != nil {
			return
		}
		// A store that opened must be internally coherent enough to scan.
		cs := st.Columns()
		for a := 0; a < cs.Schema.Len(); a++ {
			for r := 0; r < cs.Len(); r++ {
				cs.IsNull(a, r)
			}
		}
		st.Verify(context.Background())
		st.Close()
	})
}

// FuzzDictDecode drills the dictionary decoder alone: arbitrary payloads
// with arbitrary declared counts must never panic or over-allocate.
func FuzzDictDecode(f *testing.F) {
	f.Add(uint64(2), []byte{1, 0, 0, 0, 'a', 1, 0, 0, 0, 'b'})
	f.Add(uint64(1<<50), []byte{0, 0, 0, 0})
	f.Add(uint64(1), []byte{255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, count uint64, payload []byte) {
		dict, err := decodeDict(header{kind: laneDict, count: count, payloadLen: uint64(len(payload))}, payload)
		if err != nil {
			return
		}
		if uint64(len(dict)) != count {
			t.Fatalf("decoded %d entries, declared %d", len(dict), count)
		}
	})
}

// FuzzHeaderDecode: arbitrary 64-byte headers against arbitrary file sizes.
func FuzzHeaderDecode(f *testing.F) {
	good := encodeHeader(header{kind: laneF64, count: 2, payloadLen: 16, crc: 1})
	f.Add(good, int64(80), uint32(laneF64))
	f.Add(good, int64(16), uint32(laneU32))
	f.Fuzz(func(t *testing.T, raw []byte, fileSize int64, wantKind uint32) {
		h, err := decodeHeader(raw, fileSize, wantKind%5)
		if err != nil {
			return
		}
		if h.payloadLen != uint64(fileSize)-headerSize {
			t.Fatalf("accepted payloadLen %d for fileSize %d", h.payloadLen, fileSize)
		}
	})
}

// sanity: the fuzz seeds themselves round-trip.
func TestFuzzSeedStoreOpens(t *testing.T) {
	dir := t.TempDir()
	lane := func(kind uint32, count uint64, payload []byte) []byte {
		h := header{kind: kind, count: count, payloadLen: uint64(len(payload)), crc: crc32.ChecksumIEEE(payload)}
		return append(encodeHeader(h), payload...)
	}
	files := map[string][]byte{
		manifestName: []byte(`{"format":"crr-colstore","version":1,"rows":2,"columns":[` +
			`{"name":"x","kind":"numeric","lane":"col0.f64","nulls":"col0.nulls"},` +
			`{"name":"c","kind":"categorical","lane":"col1.codes","dict":"col1.dict"}]}`),
		"col0.f64":   lane(laneF64, 2, []byte{0, 0, 0, 0, 0, 0, 240, 63, 0, 0, 0, 0, 0, 0, 0, 64}),
		"col0.nulls": lane(laneBitmap, 2, []byte{1, 0, 0, 0, 0, 0, 0, 0}),
		"col1.codes": lane(laneU32, 2, []byte{0, 0, 0, 0, 1, 0, 0, 0}),
		"col1.dict":  lane(laneDict, 2, []byte{1, 0, 0, 0, 'a', 1, 0, 0, 0, 'b'}),
	}
	for name, b := range files {
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Rows() != 2 || !st.Columns().IsNull(0, 0) || st.Columns().Float(0)[1] != 2 {
		t.Fatalf("seed store decoded wrong: rows %d", st.Rows())
	}
	if got := st.Columns().Dict(1); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("dict %v", got)
	}
}
