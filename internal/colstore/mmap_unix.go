//go:build unix

package colstore

import (
	"fmt"
	"os"
	"syscall"
)

// mapping is one read-only view of a lane file. On unix it is a PROT_READ
// MAP_SHARED mmap: the kernel pages lanes in on demand and may evict clean
// pages under pressure, which is what keeps the resident set bounded by the
// scan's working set instead of the store size.
type mapping struct {
	data   []byte
	mapped bool // false when the file was read onto the heap (empty files)
}

// mapFile maps path read-only and returns its bytes. Zero-length files (and
// anything else mmap refuses) fall back to a heap read so callers never
// special-case them.
func mapFile(path string) (*mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &mapping{data: nil}, nil
	}
	if int64(int(size)) != size {
		return nil, fmt.Errorf("colstore: %s: %d bytes exceed the address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support: degrade to a heap read.
		heap, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, fmt.Errorf("colstore: mmap %s: %w", path, err)
		}
		return &mapping{data: heap}, nil
	}
	return &mapping{data: data, mapped: true}, nil
}

// close releases the mapping. The store's ColumnSet must not be used
// afterwards: its lanes alias the mapped bytes.
func (m *mapping) close() error {
	if !m.mapped || m.data == nil {
		m.data = nil
		return nil
	}
	data := m.data
	m.data = nil
	m.mapped = false
	return syscall.Munmap(data)
}
