// Package stream maintains a discovered rule set against live data: a
// bounded-ingestion layer that keeps the regression models of a RuleSet in
// step with a sliding window of arriving rows, without re-running discovery.
//
// The maintenance loop is built from the repo's existing pieces, composed:
//
//   - dataset.SlidingWindow holds the last W rows, columnar, with amortized
//     compaction.
//   - core.RuleSet.Covering routes each arriving and expiring row to every
//     rule whose condition selects it, through the same interval index
//     Predict uses — O(1) candidate conjunctions per row, not a rule scan.
//   - regress.Gram.Add / Gram.Downdate maintain per-rule sufficient
//     statistics rank-1 per routed row, so a model re-fit is the O(d³)
//     normal-equation solve (TrainGram), never an O(W·d²) design pass.
//   - Gram.Degenerate plus the Cholesky pivot check guard the carried
//     statistics against downdate cancellation; on either tripping, the Gram
//     is rebuilt fresh from the surviving rows (counted as a rebuild).
//   - stats.ModelEqualityTest (the Chow structural-break test) decides
//     refit-vs-retire when a rule has absorbed enough churn: the covered
//     window rows are split into an older and a newer half, and a rejected
//     equality means the rule's condition no longer selects a single linear
//     regime — the rule is retired rather than left to chase two models.
//   - predicate's vectorized filters drive the drift-triggered re-validation:
//     a retire is irreversible for the maintained set, so before a rule is
//     dropped its covered selection is re-derived independently — one
//     columnar sweep per conjunction over the window's (Cols, Sel), not the
//     routed bookkeeping — and the failed test recomputed on it. Routine
//     refits never pay that sweep; they reuse the exact routed pairs.
//
// Refreshed rule sets leave through Snapshot(), a freshly indexed RuleSet
// suitable for atomic hot-swap into a serving process (serve.Install /
// InstallIfGeneration, or POST /v1/reload over the wire — cmd/crrstream
// drives both).
//
// The Maintainer is single-writer: Append and Snapshot must not be called
// concurrently. Snapshots are immutable once returned and safe to serve
// concurrently, matching the serving layer's artifact contract.
package stream

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/stats"
	"github.com/crrlab/crr/internal/telemetry"
)

// Config parameterizes a Maintainer. Window and RhoM are required; the zero
// value of every other field is replaced by the default documented on it.
type Config struct {
	// Window is the sliding-window capacity in rows. Required.
	Window int

	// RhoM is the maximum tolerable bias ρM of Definition 1: a refit whose
	// empirical max residual over the covered window rows exceeds it retires
	// the rule. Required (use the bound discovery ran with).
	RhoM float64

	// Alpha is the significance level of the Chow structural-break test.
	// Default 0.001 — deliberately conservative, so a stationary stream's
	// refit churn does not retire healthy rules by chance.
	Alpha float64

	// DirtyFrac is the refit trigger: a rule is re-examined once its
	// adds+expirations since the last examination exceed this fraction of its
	// covered rows. Default 0.25.
	DirtyFrac float64

	// MinRefit is the minimum number of fit-usable covered rows before a rule
	// is re-examined at all; below it the rule keeps its current model.
	// Default max(16, 4·(dim+1)), which also keeps the Chow test's n > 2p
	// precondition satisfiable.
	MinRefit int

	// Trainer fits the models. The zero value is OLS (the F1 family).
	Trainer regress.LinearTrainer

	// Registry receives the stream.* telemetry counters. Optional.
	Registry *telemetry.Registry

	// Logf, when set, receives one line per lifecycle event (refit, drift,
	// retire, rebuild). Default: silent.
	Logf func(format string, args ...any)
}

// Stats is a point-in-time snapshot of the maintenance counters (also
// exported through the telemetry registry under the stream.* names).
type Stats struct {
	RowsIngested uint64 // rows accepted into the window
	Refits       uint64 // incremental model re-fits from carried statistics
	DriftEvents  uint64 // Chow-test rejections
	Retires      uint64 // rules retired (drift, or bias bound broken)
	Rebuilds     uint64 // carried Grams rebuilt after numerical degeneracy
	Swaps        uint64 // snapshots handed out
}

// ruleQueue is one rule's FIFO of absorbed training pairs — the exact
// shifted (x, y) each Gram.Add saw, kept so the expiry Downdate is the
// bitwise rank-1 inverse of the Add. The window is FIFO, so a rule's oldest
// pair always belongs to its oldest covered row: Append pushes at the tail,
// expiry pops at the head, and the live pairs are xs[head:], ys[head:] in
// arrival order — a rule's covered selection readable in O(1) with no
// window scan.
type ruleQueue struct {
	xs   [][]float64
	ys   []float64
	head int
}

func (q *ruleQueue) push(x []float64, y float64) {
	q.xs = append(q.xs, x)
	q.ys = append(q.ys, y)
}

func (q *ruleQueue) pop() (x []float64, y float64) {
	x, y = q.xs[q.head], q.ys[q.head]
	q.xs[q.head] = nil // release the pair to the GC
	q.head++
	// Amortized compaction keeps the dead prefix bounded by the live length.
	if q.head > 32 && q.head >= len(q.ys)/2 {
		q.xs = q.xs[:copy(q.xs, q.xs[q.head:])]
		q.ys = q.ys[:copy(q.ys, q.ys[q.head:])]
		q.head = 0
	}
	return x, y
}

func (q *ruleQueue) pairs() (xs [][]float64, ys []float64) {
	return q.xs[q.head:], q.ys[q.head:]
}

// ruleState is the per-rule carried maintenance state.
type ruleState struct {
	gram    *regress.Gram
	covered int  // fit-usable rows currently in the window
	dirty   int  // adds+expirations since the last examination
	retired bool // excluded from snapshots; keeps routing slot
	changed bool // model/ρ differs from the last snapshot
}

// Maintainer keeps one RuleSet maintained against a sliding window of
// arriving rows. Create with New, feed with Append, publish with Snapshot.
type Maintainer struct {
	cfg   Config
	rules *core.RuleSet // working copy: conditions fixed, models refit in place
	win   *dataset.SlidingWindow
	// rowRules is a queue aligned with window positions: rowRules[i] lists
	// the rules that absorbed live row i, each holding that row's pair in its
	// cover queue.
	rowRules [][]int32
	queues   []ruleQueue
	state    []ruleState

	ySum   float64 // running Σy over non-null-Y live rows (fallback mean)
	yCount int

	changed bool
	stats   Stats

	// Scratch buffers (single-writer, recycled across Appends).
	covBuf  []core.CoveringEntry
	selBuf  []int
	claimed []uint64

	ctrRows, ctrRefits, ctrDrift, ctrRetires, ctrRebuilds, ctrSwaps *telemetry.Counter
}

// New builds a Maintainer over rules. The rule set is copied shallowly —
// conditions and schema are shared (they are immutable here), models are
// replaced wholesale on refit — so the caller's set is never mutated.
func New(rules *core.RuleSet, cfg Config) (*Maintainer, error) {
	if rules == nil || rules.Schema == nil {
		return nil, errors.New("stream: rule set must carry a schema")
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("stream: Config.Window %d must be positive", cfg.Window)
	}
	if !(cfg.RhoM > 0) {
		return nil, fmt.Errorf("stream: Config.RhoM %v must be positive (use discovery's bias bound)", cfg.RhoM)
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.001
	}
	if !(cfg.Alpha > 0 && cfg.Alpha < 1) {
		return nil, fmt.Errorf("stream: Config.Alpha %v must be in (0,1)", cfg.Alpha)
	}
	if cfg.DirtyFrac == 0 {
		cfg.DirtyFrac = 0.25
	}
	if !(cfg.DirtyFrac > 0) {
		return nil, fmt.Errorf("stream: Config.DirtyFrac %v must be positive", cfg.DirtyFrac)
	}
	if cfg.MinRefit == 0 {
		cfg.MinRefit = 4 * (len(rules.XAttrs) + 1)
		if cfg.MinRefit < 16 {
			cfg.MinRefit = 16
		}
	}
	win, err := dataset.NewSlidingWindow(rules.Schema, cfg.Window)
	if err != nil {
		return nil, err
	}
	working := &core.RuleSet{
		Schema:   rules.Schema,
		XAttrs:   append([]int(nil), rules.XAttrs...),
		YAttr:    rules.YAttr,
		Rules:    append([]core.CRR(nil), rules.Rules...),
		Fallback: rules.Fallback,
	}
	m := &Maintainer{
		cfg:    cfg,
		rules:  working,
		win:    win,
		queues: make([]ruleQueue, len(working.Rules)),
		state:  make([]ruleState, len(working.Rules)),

		ctrRows:     cfg.Registry.Counter(telemetry.MetricStreamRowsIngested),
		ctrRefits:   cfg.Registry.Counter(telemetry.MetricStreamRefits),
		ctrDrift:    cfg.Registry.Counter(telemetry.MetricStreamDriftEvents),
		ctrRetires:  cfg.Registry.Counter(telemetry.MetricStreamRetires),
		ctrRebuilds: cfg.Registry.Counter(telemetry.MetricStreamRebuilds),
		ctrSwaps:    cfg.Registry.Counter(telemetry.MetricStreamSwaps),
	}
	for i := range m.state {
		m.state[i].gram = regress.NewGram(len(working.XAttrs))
	}
	return m, nil
}

func (m *Maintainer) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// Window exposes the live window (read-only; valid until the next Append).
func (m *Maintainer) Window() *dataset.SlidingWindow { return m.win }

// Stats returns the maintenance counters.
func (m *Maintainer) Stats() Stats { return m.stats }

// Live returns the number of non-retired rules.
func (m *Maintainer) Live() int {
	n := 0
	for i := range m.state {
		if !m.state[i].retired {
			n++
		}
	}
	return n
}

// Changed reports whether any rule's model, ρ, lifecycle state or the
// fallback mean has changed since the last Snapshot — the signal a driver
// polls to decide when to push a fresh artifact.
func (m *Maintainer) Changed() bool { return m.changed }

// Append ingests one row: it enters the window (expiring the oldest once the
// window is full), is routed to every covering rule whose carried statistics
// absorb it rank-1, and any rule whose churn since its last examination
// exceeds the dirty threshold is re-examined (refit, retire, or left alone).
func (m *Maintainer) Append(t dataset.Tuple) error {
	expired, err := m.win.Append(t)
	if err != nil {
		return err
	}
	m.stats.RowsIngested++
	m.ctrRows.Inc()

	if expired != nil {
		old := m.rowRules[0]
		m.rowRules = m.rowRules[1:]
		for _, ri := range old {
			st := &m.state[ri]
			x, y := m.queues[ri].pop()
			st.gram.Downdate(x, y)
			st.covered--
			st.dirty++
		}
		if !expired[m.rules.YAttr].Null {
			m.ySum -= expired[m.rules.YAttr].Num
			m.yCount--
		}
	}

	var rowRules []int32
	if !t[m.rules.YAttr].Null {
		m.ySum += t[m.rules.YAttr].Num
		m.yCount++
		m.covBuf = m.rules.Covering(t, m.covBuf)
		for _, e := range m.covBuf {
			st := &m.state[e.Rule]
			if st.retired {
				continue
			}
			rule := &m.rules.Rules[e.Rule]
			conj := rule.Cond.Conjs[e.Conj]
			x := make([]float64, len(rule.XAttrs))
			for i, attr := range rule.XAttrs {
				x[i] = t[attr].Num + conj.Builtin.Shift(attr)
			}
			y := t[m.rules.YAttr].Num - conj.Builtin.YShift
			st.gram.Add(x, y)
			st.covered++
			st.dirty++
			m.queues[e.Rule].push(x, y)
			rowRules = append(rowRules, int32(e.Rule))
		}
	}
	m.rowRules = append(m.rowRules, rowRules)

	for ri := range m.state {
		st := &m.state[ri]
		if st.retired || st.covered < m.cfg.MinRefit {
			continue
		}
		if float64(st.dirty) >= m.cfg.DirtyFrac*float64(st.covered) {
			m.examine(ri)
		}
	}
	return nil
}

// Refit re-examines every live rule with enough covered rows immediately,
// ignoring the dirty thresholds — the flush drivers call before a swap so the
// published models reflect the window as of now, not as of each rule's last
// threshold crossing. (The windowed-maintenance oracle in internal/verify
// relies on this: after Refit, an examined rule's model and ρ are exactly the
// carried-statistics fit over its current covered selection.)
func (m *Maintainer) Refit() {
	for ri := range m.state {
		if st := &m.state[ri]; !st.retired && st.covered >= m.cfg.MinRefit {
			m.examine(ri)
		}
	}
}

// examine re-fits rule ri from its carried statistics and decides its fate:
// keep the refit, or retire the rule. The decision sequence is
//
//  1. degenerate or unsolvable statistics → rebuild fresh from the window
//     (a rebuild), then retry the solve; still unsolvable → keep the old
//     model untouched (too little data to say anything);
//  2. Chow test over the older/newer halves of the covered rows rejects, or
//     the refit's empirical ρ (max residual over the covered selection)
//     exceeds ρM → the rule is suspect, and the decision moves to
//     revalidate: the selection is re-derived through the vectorized
//     predicate filters (independent of the routed bookkeeping that raised
//     the alarm) and the tests recomputed on it — confirmed structural break
//     retires the rule as a drift event, confirmed bias violation retires it
//     as a ρ breach, and a selection that no longer supports either verdict
//     keeps the rule alive;
//  3. otherwise the refit is accepted: the rule's model and ρ move to the
//     new fit.
func (m *Maintainer) examine(ri int) {
	st := &m.state[ri]
	st.dirty = 0

	xs, ys := m.coveredRows(ri)
	n := len(ys)
	if n < m.cfg.MinRefit {
		return
	}
	if st.gram.Degenerate() {
		m.rebuild(ri, xs, ys)
	}
	model, err := m.cfg.Trainer.TrainGram(st.gram)
	if err != nil {
		// The carried statistics cannot serve the fit — most often downdate
		// cancellation that slipped past the cheap Degenerate check and broke
		// Cholesky. Rebuild once from the surviving rows and retry.
		m.rebuild(ri, xs, ys)
		if model, err = m.cfg.Trainer.TrainGram(st.gram); err != nil {
			return
		}
	}
	m.stats.Refits++
	m.ctrRefits.Inc()

	rho, sseJoint := residualStats(model, xs, ys)
	if rho > m.cfg.RhoM || m.chowRejects(sseJoint, xs, ys) {
		m.revalidate(ri)
		return
	}
	m.accept(ri, model, rho, n)
}

// accept installs a refit that passed every check.
func (m *Maintainer) accept(ri int, model regress.Model, rho float64, n int) {
	rule := &m.rules.Rules[ri]
	if !model.Equal(rule.Model, 0) || rho != rule.Rho {
		rule.Model = model
		rule.Rho = rho
		m.state[ri].changed = true
		m.changed = true
	}
	m.logf("stream: refit rule %d over %d rows, ρ=%.4g", ri, n, rho)
}

// revalidate is the drift-triggered slow path: the routed statistics flagged
// rule ri as broken, so its covered selection is re-derived through the
// vectorized predicate filters — an independent columnar sweep per
// conjunction, sharing nothing with the Covering bookkeeping — and the
// verdict recomputed from a freshly accumulated fit over that selection.
// Only a confirmed failure retires the rule.
func (m *Maintainer) revalidate(ri int) {
	xs, ys := m.coveredRowsFiltered(ri)
	n := len(ys)
	if n < m.cfg.MinRefit {
		return // the independent selection is below the refit floor: keep the rule
	}
	g := regress.NewGram(len(m.rules.XAttrs))
	for i, x := range xs {
		g.Add(x, ys[i])
	}
	model, err := m.cfg.Trainer.TrainGram(g)
	if err != nil {
		return // cannot test ⇒ keep the rule
	}
	rho, sseJoint := residualStats(model, xs, ys)
	if m.chowRejects(sseJoint, xs, ys) {
		m.stats.DriftEvents++
		m.ctrDrift.Inc()
		m.retire(ri, "structural break")
		return
	}
	if rho > m.cfg.RhoM {
		m.retire(ri, fmt.Sprintf("refit ρ %.4g exceeds ρM %.4g", rho, m.cfg.RhoM))
		return
	}
	// The independently selected rows support neither verdict — the alarm was
	// a sampling artifact of the routed order. Keep the rule on the re-derived
	// fit.
	m.accept(ri, model, rho, n)
}

// residualStats returns the max |residual| (the empirical ρ) and the SSE of
// model over the pairs, in one pass.
func residualStats(model regress.Model, xs [][]float64, ys []float64) (rho, sse float64) {
	for i, x := range xs {
		d := ys[i] - model.Predict(x)
		if a := math.Abs(d); a > rho {
			rho = a
		}
		sse += d * d
	}
	return rho, sse
}

// rebuild re-accumulates rule ri's Gram fresh from its covered window rows
// (the fallback for downdate cancellation); the cover queue is untouched, so
// future expirations keep downdating the rebuilt statistics consistently.
func (m *Maintainer) rebuild(ri int, xs [][]float64, ys []float64) {
	st := &m.state[ri]
	g := regress.NewGram(len(m.rules.XAttrs))
	for i, x := range xs {
		g.Add(x, ys[i])
	}
	st.gram = g
	st.covered = len(ys)
	m.stats.Rebuilds++
	m.ctrRebuilds.Inc()
	m.logf("stream: rebuilt statistics of rule %d from %d rows", ri, len(ys))
}

// retire drops rule ri from future snapshots and releases its carried state.
// The routing slot stays (rule indices are stable for row-cover bookkeeping);
// pending covers of the retired rule downdate a discarded Gram harmlessly.
func (m *Maintainer) retire(ri int, why string) {
	st := &m.state[ri]
	st.retired = true
	st.changed = true
	m.changed = true
	m.stats.Retires++
	m.ctrRetires.Inc()
	m.logf("stream: retired rule %d (%s)", ri, why)
}

// chowRejects runs the structural-break test on rule rows already collected
// in window order: older half against newer half, p = dim+1 parameters per
// model, sseJoint the joint fit's SSE over all rows. Degenerate regimes (too
// few rows, unsolvable halves, zero residual) report no break — "cannot
// test" must keep the rule, not kill it.
func (m *Maintainer) chowRejects(sseJoint float64, xs [][]float64, ys []float64) bool {
	n := len(ys)
	p := len(m.rules.XAttrs) + 1
	if n <= 2*p {
		return false
	}
	half := n / 2
	fit := func(lo, hi int) (regress.Model, float64, bool) {
		g := regress.NewGram(len(m.rules.XAttrs))
		for i := lo; i < hi; i++ {
			g.Add(xs[i], ys[i])
		}
		mdl, err := m.cfg.Trainer.TrainGram(g)
		if err != nil {
			return nil, 0, false
		}
		return mdl, sse(mdl, xs[lo:hi], ys[lo:hi]), true
	}
	_, sseOld, ok := fit(0, half)
	if !ok {
		return false
	}
	_, sseNew, ok := fit(half, n)
	if !ok {
		return false
	}
	reject, _, err := stats.ModelEqualityTest(sseJoint, sseOld+sseNew, p, n, m.cfg.Alpha)
	return err == nil && reject
}

func sse(f regress.Model, xs [][]float64, ys []float64) float64 {
	var s float64
	for i, x := range xs {
		d := ys[i] - f.Predict(x)
		s += d * d
	}
	return s
}

// coveredRows returns rule ri's fit-usable covered window rows — the exact
// shifted training pairs its Gram absorbed, in window (arrival) order — as
// views into its cover queue: O(1), zero copy, bitwise agreement with the
// carried statistics by construction. The slices are read-only and valid
// until the next Append.
func (m *Maintainer) coveredRows(ri int) (xs [][]float64, ys []float64) {
	return m.queues[ri].pairs()
}

// coveredRowsFiltered re-derives rule ri's fit-usable covered selection
// through the vectorized predicate filters: one columnar sweep per
// conjunction over the window's (Cols, Sel), first-match claims enforced
// with a row bitmap, then null-X/null-Y rows dropped. It shares nothing with
// the Covering-index routing, which is exactly why revalidate uses it as the
// independent second opinion before a retire (and why tests diff it against
// coveredRows).
func (m *Maintainer) coveredRowsFiltered(ri int) (xs [][]float64, ys []float64) {
	rule := &m.rules.Rules[ri]
	cols, sel := m.win.Cols(), m.win.Sel()
	words := (cols.Len() + 63) / 64
	if cap(m.claimed) < words {
		m.claimed = make([]uint64, words)
	}
	m.claimed = m.claimed[:words]
	for i := range m.claimed {
		m.claimed[i] = 0
	}
	type claim struct{ row, conj int }
	var claims []claim
	for ci := range rule.Cond.Conjs {
		m.selBuf = rule.Cond.Conjs[ci].Filter(cols, sel, m.selBuf)
		for _, r := range m.selBuf {
			if m.claimed[r>>6]&(1<<(uint(r)&63)) != 0 {
				continue
			}
			m.claimed[r>>6] |= 1 << (uint(r) & 63)
			claims = append(claims, claim{row: r, conj: ci})
		}
	}
	// Claims from different conjunctions interleave; restore window order
	// (appender rows are strictly increasing along the window).
	sort.Slice(claims, func(i, j int) bool { return claims[i].row < claims[j].row })
rows:
	for _, c := range claims {
		if cols.IsNull(m.rules.YAttr, c.row) {
			continue
		}
		conj := rule.Cond.Conjs[c.conj]
		x := make([]float64, len(rule.XAttrs))
		for i, attr := range rule.XAttrs {
			if cols.IsNull(attr, c.row) {
				continue rows
			}
			x[i] = cols.Float(attr)[c.row] + conj.Builtin.Shift(attr)
		}
		xs = append(xs, x)
		ys = append(ys, cols.Float(m.rules.YAttr)[c.row]-conj.Builtin.YShift)
	}
	return xs, ys
}

// Coverage returns the fraction of live window rows covered by at least one
// non-retired rule — the incremental coverage re-validation figure.
func (m *Maintainer) Coverage() float64 {
	rows := m.win.Rows()
	if len(rows) == 0 {
		return 1
	}
	covered := 0
	for _, t := range rows {
		m.covBuf = m.rules.Covering(t, m.covBuf)
		for _, e := range m.covBuf {
			if !m.state[e.Rule].retired {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(rows))
}

// Snapshot publishes the maintained rule set: a fresh RuleSet holding the
// non-retired rules with their current models and ρ, the fallback re-centred
// on the window's exact target mean, and its own prediction index — safe to
// hand to a serving process for an atomic swap. Snapshot clears Changed.
func (m *Maintainer) Snapshot() *core.RuleSet {
	out := &core.RuleSet{
		Schema:   m.rules.Schema,
		XAttrs:   append([]int(nil), m.rules.XAttrs...),
		YAttr:    m.rules.YAttr,
		Fallback: m.rules.Fallback,
	}
	if m.yCount > 0 {
		// Re-sum exactly: the running ySum drifts by ulps over long streams.
		var sum float64
		n := 0
		for _, t := range m.win.Rows() {
			if !t[m.rules.YAttr].Null {
				sum += t[m.rules.YAttr].Num
				n++
			}
		}
		out.Fallback = sum / float64(n)
	}
	for ri := range m.rules.Rules {
		if !m.state[ri].retired {
			out.Rules = append(out.Rules, m.rules.Rules[ri])
		}
	}
	m.changed = false
	for i := range m.state {
		m.state[i].changed = false
	}
	m.stats.Swaps++
	m.ctrSwaps.Inc()
	return out
}
