package stream

import (
	"context"
	"math"
	"testing"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/telemetry"
)

// taxRules mines Tax ~ Salary | State over a synthetic tax relation — the
// same shape the serving tests use.
func taxRules(t testing.TB, rows int, seed int64) (*dataset.Relation, *core.RuleSet) {
	t.Helper()
	rel := dataset.GenerateTax(dataset.TaxConfig{Rows: rows, Noise: 0.5, Seed: seed})
	state := rel.Schema.MustIndex("State")
	preds := predicate.Generate(rel, []int{state}, predicate.GeneratorConfig{})
	res, err := core.Discover(context.Background(), rel, core.WithConfig(core.DiscoverConfig{
		XAttrs:  []int{rel.Schema.MustIndex("Salary")},
		YAttr:   rel.Schema.MustIndex("Tax"),
		RhoM:    60,
		Preds:   preds,
		Trainer: regress.LinearTrainer{},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rules.NumRules() < 2 {
		t.Fatalf("tax mine produced %d rules", res.Rules.NumRules())
	}
	return rel, res.Rules
}

// TestMaintainerStationaryStream: on a stream drawn from the training
// distribution the maintainer refits but never retires, coverage stays
// complete, and — the windowed-refit oracle — every rule's carried
// sufficient statistics fit matches a from-scratch re-fit over exactly its
// covered window rows within a 1e-9-scale drift bound.
func TestMaintainerStationaryStream(t *testing.T) {
	rel, rules := taxRules(t, 6000, 4)
	reg := telemetry.New()
	m, err := New(rules, Config{Window: 512, RhoM: 60, Alpha: 1e-6, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range rel.Tuples {
		if err := m.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.RowsIngested != uint64(rel.Len()) {
		t.Fatalf("ingested %d of %d rows", st.RowsIngested, rel.Len())
	}
	if st.Refits == 0 {
		t.Fatal("stationary stream produced no refits")
	}
	if st.Retires != 0 || st.DriftEvents != 0 {
		t.Fatalf("stationary stream retired rules: %+v", st)
	}
	if got := m.Live(); got != rules.NumRules() {
		t.Fatalf("live rules %d, want %d", got, rules.NumRules())
	}
	if cov := m.Coverage(); cov < 0.99 {
		t.Fatalf("window coverage %v", cov)
	}
	if reg.Counter(telemetry.MetricStreamRowsIngested).Value() != int64(rel.Len()) {
		t.Fatal("telemetry rows_ingested does not match Stats")
	}

	assertCarriedMatchesFresh(t, m)

	if !m.Changed() {
		t.Fatal("refits happened but Changed() is false")
	}
	snap := m.Snapshot()
	if m.Changed() {
		t.Fatal("Snapshot did not clear Changed")
	}
	if snap.NumRules() != rules.NumRules() {
		t.Fatalf("snapshot has %d rules, want %d", snap.NumRules(), rules.NumRules())
	}
	// The published set must satisfy the bias bound on the live window.
	for _, tp := range m.Window().Rows() {
		pred, covered := snap.Predict(tp)
		if covered && math.Abs(tp[snap.YAttr].Num-pred) > 60+1e-9 {
			t.Fatalf("published rule violates ρM on window row: |%v - %v| > 60",
				tp[snap.YAttr].Num, pred)
		}
	}
}

// assertCarriedMatchesFresh is the oracle core: for every live rule, the
// routed cover records, the carried count and the vectorized-filter
// re-selection must agree on the covered rows, and fitting the carried Gram
// vs a freshly accumulated Gram over those rows must agree within 1e-9 of
// the target scale.
func assertCarriedMatchesFresh(t *testing.T, m *Maintainer) {
	t.Helper()
	checked := 0
	for ri := range m.state {
		if m.state[ri].retired {
			continue
		}
		fxs, fys := m.coveredRowsFiltered(ri)
		if m.state[ri].covered != len(fys) {
			t.Fatalf("rule %d: routed count %d vs filtered count %d — the Covering and filter paths disagree",
				ri, m.state[ri].covered, len(fys))
		}
		xs, ys := m.coveredRows(ri)
		if len(ys) != len(fys) {
			t.Fatalf("rule %d: cover records hold %d pairs, filters selected %d",
				ri, len(ys), len(fys))
		}
		for i := range ys {
			if ys[i] != fys[i] {
				t.Fatalf("rule %d pair %d: cover-record y %v vs filtered y %v",
					ri, i, ys[i], fys[i])
			}
			for j := range xs[i] {
				if xs[i][j] != fxs[i][j] {
					t.Fatalf("rule %d pair %d: cover-record x[%d] %v vs filtered %v",
						ri, i, j, xs[i][j], fxs[i][j])
				}
			}
		}
		if len(ys) <= len(m.rules.XAttrs)+1 {
			continue
		}
		fresh := regress.NewGram(len(m.rules.XAttrs))
		scale := 1.0
		for i, x := range xs {
			fresh.Add(x, ys[i])
			if a := math.Abs(ys[i]); a > scale {
				scale = a
			}
		}
		carriedFit, err1 := m.cfg.Trainer.TrainGram(m.state[ri].gram)
		freshFit, err2 := m.cfg.Trainer.TrainGram(fresh)
		if err1 != nil || err2 != nil {
			t.Fatalf("rule %d: fits failed: %v / %v", ri, err1, err2)
		}
		for i, x := range xs {
			if d := math.Abs(carriedFit.Predict(x) - freshFit.Predict(x)); d > 1e-9*scale {
				t.Fatalf("rule %d row %d: carried fit drifted %g from fresh fit (bound %g)",
					ri, i, d, 1e-9*scale)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("oracle checked no rules")
	}
}

// TestMaintainerDriftRetires: when the stream's generating process changes,
// the Chow test (or the broken bias bound) retires the affected rules and
// snapshots stop serving them.
func TestMaintainerDriftRetires(t *testing.T) {
	rel, rules := taxRules(t, 6000, 4)
	m, err := New(rules, Config{Window: 512, RhoM: 60})
	if err != nil {
		t.Fatal(err)
	}
	tax := rel.Schema.MustIndex("Tax")
	for i, tp := range rel.Tuples {
		if i >= 2000 {
			// Regime change: a new tax schedule, far outside ρM = 60.
			tp = tp.Clone()
			tp[tax] = dataset.Num(tp[tax].Num*1.3 + 500)
		}
		if err := m.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Retires == 0 {
		t.Fatalf("drifted stream retired nothing: %+v", st)
	}
	if m.Live() == rules.NumRules() {
		t.Fatal("no rule left the live set despite the regime change")
	}
	snap := m.Snapshot()
	if snap.NumRules() != m.Live() {
		t.Fatalf("snapshot serves %d rules, live %d", snap.NumRules(), m.Live())
	}
}

// TestMaintainerNullCells: null targets and null inputs flow through
// ingestion without corrupting the carried statistics or the fallback mean.
func TestMaintainerNullCells(t *testing.T) {
	rel, rules := taxRules(t, 3000, 7)
	m, err := New(rules, Config{Window: 256, RhoM: 60})
	if err != nil {
		t.Fatal(err)
	}
	salary, tax := rel.Schema.MustIndex("Salary"), rel.Schema.MustIndex("Tax")
	for i, tp := range rel.Tuples {
		switch i % 7 {
		case 3:
			tp = tp.Clone()
			tp[tax] = dataset.Null()
		case 5:
			tp = tp.Clone()
			tp[salary] = dataset.Null()
		}
		if err := m.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	// yCount must equal the non-null targets in the live window exactly.
	wantY := 0
	var wantSum float64
	for _, tp := range m.Window().Rows() {
		if !tp[tax].Null {
			wantY++
			wantSum += tp[tax].Num
		}
	}
	if m.yCount != wantY {
		t.Fatalf("fallback count %d, want %d", m.yCount, wantY)
	}
	assertCarriedMatchesFresh(t, m)
	snap := m.Snapshot()
	if want := wantSum / float64(wantY); math.Abs(snap.Fallback-want) > 1e-9*math.Abs(want) {
		t.Fatalf("fallback %v, want window mean %v", snap.Fallback, want)
	}
}

// TestMaintainerSingularStatisticsRecover: a rule whose covered rows are
// degenerate (constant X → singular normal equations) exercises the
// fallback chain — failed solve, fresh rebuild, retry. Whatever the retry
// outcome (the rebuilt system may solve within float noise or keep failing),
// the rule must never be retired and must never serve a garbage model.
func TestMaintainerSingularStatisticsRecover(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "x", Kind: dataset.Numeric},
		dataset.Attribute{Name: "y", Kind: dataset.Numeric},
	)
	orig := regress.NewLinear(1, 2)
	rules := &core.RuleSet{
		Schema: schema,
		XAttrs: []int{0},
		YAttr:  1,
		Rules: []core.CRR{{
			Model:  orig,
			Rho:    10,
			Cond:   predicate.DNF{Conjs: []predicate.Conjunction{{}}},
			XAttrs: []int{0},
			YAttr:  1,
		}},
	}
	m, err := New(rules, Config{Window: 64, RhoM: 10, MinRefit: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		tp := dataset.Tuple{dataset.Num(5), dataset.Num(11 + 0.001*float64(i%3))}
		if err := m.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Rebuilds == 0 {
		t.Fatal("singular statistics never triggered a rebuild")
	}
	if st.Retires != 0 {
		t.Fatalf("degenerate rule was retired: %+v", st)
	}
	// All observed targets sit in [11, 11.002] at x=5; any served model —
	// original or legitimately refit — must predict there, not emit debris
	// from a near-singular solve.
	if got := m.rules.Rules[0].Model.Predict([]float64{5}); math.Abs(got-11) > 0.01 {
		t.Fatalf("served model predicts %v at x=5, want ≈11", got)
	}
}

// TestMaintainerConfigValidation: the required knobs are enforced.
func TestMaintainerConfigValidation(t *testing.T) {
	_, rules := taxRules(t, 400, 4)
	cases := []Config{
		{Window: 0, RhoM: 1},
		{Window: 10, RhoM: 0},
		{Window: 10, RhoM: 1, Alpha: 2},
		{Window: 10, RhoM: 1, DirtyFrac: -1},
	}
	for i, cfg := range cases {
		if _, err := New(rules, cfg); err == nil {
			t.Errorf("case %d: bad config accepted: %+v", i, cfg)
		}
	}
	if _, err := New(nil, Config{Window: 10, RhoM: 1}); err == nil {
		t.Error("nil rule set accepted")
	}
}
