package stream

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// electricityConfig is the canonical Electricity discovery workload the
// verify and experiments harnesses run — GlobalActivePower ~ Time, mined
// piecewise over time-window conditions from the paper-default 64-predicate
// budget — so the rediscovery baseline reflects the job the maintainer
// actually replaces.
func electricityConfig(rel *dataset.Relation) core.DiscoverConfig {
	return core.DiscoverConfig{
		XAttrs:  []int{0}, // Time
		YAttr:   1,        // GlobalActivePower
		RhoM:    0.5,
		Preds:   predicate.Generate(rel, []int{0}, predicate.GeneratorConfig{Kind: predicate.Binary, Size: 64}),
		Trainer: regress.LinearTrainer{},
	}
}

// electricityStream mines the canonical configuration and returns the
// relation + rules both sides of the incremental-vs-rediscovery comparison
// share. The feed cycles the same rows, so the stream is stationary and
// every window stays inside the mined conditions' time range.
func electricityStream(tb testing.TB, rows int) (*dataset.Relation, *core.RuleSet) {
	tb.Helper()
	cfg := dataset.DefaultElectricityConfig()
	cfg.Rows = rows
	rel := dataset.GenerateElectricity(cfg)
	res, err := core.Discover(context.Background(), rel, core.WithConfig(electricityConfig(rel)))
	if err != nil {
		tb.Fatal(err)
	}
	if res.Rules.NumRules() == 0 {
		tb.Fatal("electricity mine produced no rules")
	}
	return rel, res.Rules
}

const (
	benchWindow = 8192
	benchRows   = 16384 // generated feed length (cycled)
	benchAppend = 1000  // rows per maintenance round (the "per 1k appended rows" unit)
)

// BenchmarkStreamMaintain1k: one round of incremental maintenance — 1000
// appends through the Maintainer (rank-1 updates + threshold refits), then a
// flush and a publishable snapshot.
func BenchmarkStreamMaintain1k(b *testing.B) {
	rel, rules := electricityStream(b, benchRows)
	m, err := New(rules, Config{Window: benchWindow, RhoM: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	next := 0
	feed := func() dataset.Tuple {
		tp := rel.Tuples[next]
		next = (next + 1) % rel.Len()
		return tp
	}
	for i := 0; i < benchWindow; i++ {
		if err := m.Append(feed()); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < benchAppend; j++ {
			if err := m.Append(feed()); err != nil {
				b.Fatal(err)
			}
		}
		m.Refit()
		if m.Changed() {
			_ = m.Snapshot()
		}
	}
}

// BenchmarkStreamRediscover1k: the from-scratch baseline — after each 1000
// appended rows, re-run predicate generation and full discovery over the
// current window, the way a maintainer-less deployment would refresh its
// artifact.
func BenchmarkStreamRediscover1k(b *testing.B) {
	rel, _ := electricityStream(b, benchRows)
	window := make([]dataset.Tuple, 0, benchWindow)
	next := 0
	feed := func() dataset.Tuple {
		tp := rel.Tuples[next]
		next = (next + 1) % rel.Len()
		return tp
	}
	for i := 0; i < benchWindow; i++ {
		window = append(window, feed())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < benchAppend; j++ {
			window = append(window, feed())
			if len(window) > benchWindow {
				window = window[1:]
			}
		}
		winRel := &dataset.Relation{Schema: rel.Schema, Tuples: window}
		res, err := core.Discover(context.Background(), winRel, core.WithConfig(electricityConfig(winRel)))
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Rules
	}
}

// TestStreamSpeedupOverRediscovery enforces the performance contract the
// benchmarks record: maintaining 1k appended rows incrementally must beat
// re-running discovery over the window by at least 5×. The margin in practice
// is far larger; 5× keeps the gate robust on loaded CI machines.
func TestStreamSpeedupOverRediscovery(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	rel, rules := electricityStream(t, benchRows)

	m, err := New(rules, Config{Window: benchWindow, RhoM: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	feed := func() dataset.Tuple {
		tp := rel.Tuples[next]
		next = (next + 1) % rel.Len()
		return tp
	}
	// Warm up with one untimed round: filling the window leaves every rule
	// pending-dirty, so the first round's refit burst (and the allocator
	// growing the queues) is not steady-state behaviour.
	for i := 0; i < benchWindow+benchAppend; i++ {
		if err := m.Append(feed()); err != nil {
			t.Fatal(err)
		}
	}
	m.Refit()
	if m.Changed() {
		_ = m.Snapshot()
	}
	// Best of three timed rounds on each side: scheduling noise on a shared
	// CI machine only ever inflates a measurement, so the minimum is the
	// robust estimator of the true per-round cost.
	incremental := time.Duration(math.MaxInt64)
	for r := 0; r < 3; r++ {
		start := time.Now()
		for j := 0; j < benchAppend; j++ {
			if err := m.Append(feed()); err != nil {
				t.Fatal(err)
			}
		}
		m.Refit()
		if m.Changed() {
			_ = m.Snapshot()
		}
		if d := time.Since(start); d < incremental {
			incremental = d
		}
	}

	winRel := m.Window().Relation()
	rediscovery := time.Duration(math.MaxInt64)
	for r := 0; r < 3; r++ {
		start := time.Now()
		if _, err := core.Discover(context.Background(), winRel, core.WithConfig(electricityConfig(winRel))); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < rediscovery {
			rediscovery = d
		}
	}

	t.Logf("incremental %v vs rediscovery %v per %d appended rows (%.1fx)",
		incremental, rediscovery, benchAppend, float64(rediscovery)/float64(incremental))
	if rediscovery < 5*incremental {
		t.Fatalf("incremental maintenance (%v) is not ≥5x faster than rediscovery (%v)",
			incremental, rediscovery)
	}
}
