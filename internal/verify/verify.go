// Package verify is the differential-testing and invariant-checking
// subsystem of the CRR engine. The repo carries several independent
// execution paths that must agree — sequential vs parallel discovery,
// columnar vs tuple-at-a-time scans, the interval-indexed Predict vs a
// linear rule scan, in-process classification vs the served HTTP endpoints,
// and the codec round-trip — plus a compaction pass whose contract is "every
// rewrite is a sound inference". This package checks all of it mechanically:
//
//   - Cross-engine oracles: discovery in all four engine modes
//     (sequential/parallel × columnar/row-scan) with bitwise diffing where
//     determinism is contractual, Predict/PredictBatch/Violations/Explain
//     columnar-vs-rowwise, and served endpoints vs in-process results.
//   - Inference soundness: every CompactStats application (Translation,
//     Fusion, Implied drop) is captured through CompactOptions.Trace and
//     replayed against the data, asserting the paper's soundness conditions
//     (Propositions 2–9): identical coverage, bias within ρ (plus the
//     documented tolerance-induced drift bound), Implies consistency per
//     Definition 2.
//   - Metamorphic invariants: row permutation, row duplication, attribute
//     renaming and unit translation (x+Δ, y+δ) must leave discovered rule
//     semantics invariant; violations come with a minimized reproducer.
//
// cmd/crrverify drives it across the five evaluation generators; the
// library surface is reusable from tests and fuzz targets. Telemetry counts
// every oracle under verify.oracles_run and every failure under
// verify.divergences.
package verify

import (
	"context"
	"fmt"
	"math"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/telemetry"
)

// Target is one dataset under verification: a relation plus the regression
// signature and discovery parameters the oracles run with. cmd/crrverify
// builds targets from the experiment dataset specs; tests and fuzz targets
// can build their own.
type Target struct {
	Name string
	Rel  *dataset.Relation
	// XAttrs/YAttr is the regression signature, CondAttrs feed the
	// predicate generator.
	XAttrs    []int
	YAttr     int
	CondAttrs []int
	// RhoM is the discovery bias bound ρ_M.
	RhoM float64
	// CompactTol is the Algorithm 2 model tolerance verified in the
	// loose-tolerance soundness pass (0 skips that pass; the exact pass
	// always runs).
	CompactTol float64
}

// Options tunes a verification run.
type Options struct {
	// Workers is the parallel-engine width for the discovery matrix;
	// default 4.
	Workers int
	// Seed drives the deterministic row permutation of the metamorphic
	// suite.
	Seed int64
	// PredSize is the per-attribute predicate budget (GeneratorConfig.Size);
	// default 64, matching the hot-path comparison harness.
	PredSize int
	// SkipServe disables the served-endpoint parity oracles (they spin up an
	// httptest server per target).
	SkipServe bool
	// SkipMetamorphic disables the metamorphic suite (it re-runs discovery
	// several times per target).
	SkipMetamorphic bool
	// Telemetry receives verify.oracles_run / verify.divergences; nil
	// disables instrumentation.
	Telemetry *telemetry.Registry
	// Logf, when set, receives one progress line per oracle family.
	Logf func(format string, args ...any)
}

// Divergence is one failed oracle check.
type Divergence struct {
	Dataset string `json:"dataset"`
	// Oracle names the check that failed, e.g. "discover/seq-bitwise" or
	// "metamorphic/permutation".
	Oracle string `json:"oracle"`
	// Detail describes the first observed disagreement.
	Detail string `json:"detail"`
	// Reproducer, when present, describes a minimized failing input.
	Reproducer string `json:"reproducer,omitempty"`
}

// DatasetReport is the verification outcome for one target.
type DatasetReport struct {
	Dataset        string       `json:"dataset"`
	Rows           int          `json:"rows"`
	Rules          int          `json:"rules"`
	CompactedRules int          `json:"compacted_rules"`
	OraclesRun     int          `json:"oracles_run"`
	SoundnessApps  int          `json:"soundness_applications"`
	Divergences    []Divergence `json:"divergences,omitempty"`
}

// Report aggregates a verification run.
type Report struct {
	Datasets    []DatasetReport `json:"datasets"`
	OraclesRun  int             `json:"oracles_run"`
	Divergences int             `json:"divergences"`
}

// Failed reports whether any oracle diverged.
func (r *Report) Failed() bool { return r.Divergences > 0 }

// runner carries the per-run state: options, telemetry handles and the
// report section of the target currently being verified.
type runner struct {
	opts    Options
	oracles *telemetry.Counter
	diverg  *telemetry.Counter
	cur     *DatasetReport
	target  Target
}

// pass records one executed oracle check that agreed.
func (rn *runner) pass() {
	rn.cur.OraclesRun++
	rn.oracles.Inc()
}

// fail records one executed oracle check that diverged.
func (rn *runner) fail(oracle, detail string) {
	rn.failRepro(oracle, detail, "")
}

// failRepro is fail carrying a minimized reproducer description.
func (rn *runner) failRepro(oracle, detail, repro string) {
	rn.cur.OraclesRun++
	rn.oracles.Inc()
	rn.diverg.Inc()
	rn.cur.Divergences = append(rn.cur.Divergences, Divergence{
		Dataset:    rn.target.Name,
		Oracle:     oracle,
		Detail:     detail,
		Reproducer: repro,
	})
}

// check records one oracle check whose detail is empty on agreement.
func (rn *runner) check(oracle, detail string) {
	if detail == "" {
		rn.pass()
		return
	}
	rn.fail(oracle, detail)
}

func (rn *runner) logf(format string, args ...any) {
	if rn.opts.Logf != nil {
		rn.opts.Logf(format, args...)
	}
}

// Run verifies every target and returns the aggregated report. Divergences
// are reported, not returned as errors; the error return covers hard
// failures only (cancellation, discovery refusing a target).
func Run(ctx context.Context, targets []Target, opts Options) (*Report, error) {
	if opts.Workers <= 1 {
		opts.Workers = 4
	}
	if opts.PredSize <= 0 {
		opts.PredSize = 64
	}
	rn := &runner{
		opts:    opts,
		oracles: opts.Telemetry.Counter(telemetry.MetricVerifyOraclesRun),
		diverg:  opts.Telemetry.Counter(telemetry.MetricVerifyDivergences),
	}
	report := &Report{}
	for _, t := range targets {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dr, err := rn.runTarget(ctx, t)
		if err != nil {
			return nil, fmt.Errorf("verify %s: %w", t.Name, err)
		}
		report.Datasets = append(report.Datasets, *dr)
		report.OraclesRun += dr.OraclesRun
		report.Divergences += len(dr.Divergences)
	}
	return report, nil
}

// runTarget runs the full oracle matrix on one target.
func (rn *runner) runTarget(ctx context.Context, t Target) (*DatasetReport, error) {
	rn.target = t
	rn.cur = &DatasetReport{Dataset: t.Name, Rows: t.Rel.Len()}

	rn.logf("[%s] discovery matrix (4 engine modes)", t.Name)
	rules, err := rn.discoveryMatrix(ctx, t)
	if err != nil {
		return nil, err
	}
	rn.cur.Rules = rules.NumRules()

	rn.logf("[%s] classification oracles (discovered set)", t.Name)
	rn.classificationOracles(t, rules, "discovered")
	rn.codecOracle(t, rules, "discovered")

	rn.logf("[%s] out-of-core store parity", t.Name)
	if err := rn.colstoreOracle(ctx, t, rules); err != nil {
		return nil, err
	}

	rn.logf("[%s] windowed stream maintenance", t.Name)
	if err := rn.streamOracle(t, rules); err != nil {
		return nil, err
	}

	rn.logf("[%s] induction strategy oracles", t.Name)
	if err := rn.strategyOracles(ctx, t); err != nil {
		return nil, err
	}

	rn.logf("[%s] compaction soundness", t.Name)
	compacted, err := rn.soundness(ctx, t, rules)
	if err != nil {
		return nil, err
	}
	rn.cur.CompactedRules = compacted.NumRules()
	rn.classificationOracles(t, compacted, "compacted")
	rn.codecOracle(t, compacted, "compacted")

	if !rn.opts.SkipServe {
		rn.logf("[%s] serve parity", t.Name)
		if err := rn.serveOracles(t, rules, "discovered"); err != nil {
			return nil, err
		}
		if err := rn.serveOracles(t, compacted, "compacted"); err != nil {
			return nil, err
		}
		rn.logf("[%s] cluster parity (router passthrough)", t.Name)
		if err := rn.clusterOracles(t, rules, "discovered"); err != nil {
			return nil, err
		}
		if err := rn.clusterOracles(t, compacted, "compacted"); err != nil {
			return nil, err
		}
	}

	if !rn.opts.SkipMetamorphic {
		rn.logf("[%s] metamorphic invariants", t.Name)
		if err := rn.metamorphic(ctx, t); err != nil {
			return nil, err
		}
	}
	return rn.cur, nil
}

// baseConfig assembles the discovery configuration the oracles share: the
// paper-default binary predicate space over the target's condition
// attributes and an OLS trainer, on the sequential columnar engine.
func baseConfig(t Target, rel *dataset.Relation, predSize int) core.DiscoverConfig {
	preds := predicate.Generate(rel, t.CondAttrs, predicate.GeneratorConfig{
		Kind: predicate.Binary, Size: predSize,
	})
	return core.DiscoverConfig{
		XAttrs:  t.XAttrs,
		YAttr:   t.YAttr,
		RhoM:    t.RhoM,
		Preds:   preds,
		Trainer: regress.LinearTrainer{},
	}
}

// trainableRows returns the indices of rows with non-null X and Y cells —
// the rows Problem 1 requires Σ to cover.
func trainableRows(rel *dataset.Relation, xattrs []int, yattr int) []int {
	var out []int
rows:
	for i, tp := range rel.Tuples {
		if tp[yattr].Null {
			continue
		}
		for _, a := range xattrs {
			if tp[a].Null {
				continue rows
			}
		}
		out = append(out, i)
	}
	return out
}

// bitsEqual reports bitwise float equality (NaN equals NaN; ±0 differ).
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}
