package verify

import (
	"context"
	"strings"
	"testing"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/experiments"
	"github.com/crrlab/crr/internal/telemetry"
)

// targetFromSpec builds a small verification target from an experiment
// dataset spec.
func targetFromSpec(spec experiments.DatasetSpec, rows int) Target {
	return Target{
		Name:       spec.Name,
		Rel:        spec.Gen(rows),
		XAttrs:     spec.XAttrs,
		YAttr:      spec.YAttr,
		CondAttrs:  spec.CondAttrs,
		RhoM:       spec.RhoM,
		CompactTol: spec.CompactTol,
	}
}

// TestRunBirdMap runs the full oracle matrix (serve parity included) on a
// small BirdMap slice and expects zero divergences.
func TestRunBirdMap(t *testing.T) {
	reg := telemetry.New()
	rep, err := Run(context.Background(), []Target{targetFromSpec(experiments.BirdMapSpec(), 400)}, Options{
		Seed:      1,
		Telemetry: reg,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Failed() {
		t.Fatalf("divergences: %+v", rep.Datasets[0].Divergences)
	}
	if rep.OraclesRun == 0 {
		t.Fatal("no oracles ran")
	}
	dr := rep.Datasets[0]
	if dr.Rules == 0 || dr.SoundnessApps == 0 {
		t.Fatalf("expected discovered rules and compaction applications, got %+v", dr)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[telemetry.MetricVerifyOraclesRun]; got != int64(rep.OraclesRun) {
		t.Fatalf("telemetry oracles_run = %d, report says %d", got, rep.OraclesRun)
	}
	if got := snap.Counters[telemetry.MetricVerifyDivergences]; got != 0 {
		t.Fatalf("telemetry divergences = %d, want 0", got)
	}
}

// TestRunTaxQuick covers a categorical-condition dataset with the expensive
// suites skipped (the path cmd/crrverify -quick exercises).
func TestRunTaxQuick(t *testing.T) {
	rep, err := Run(context.Background(), []Target{targetFromSpec(experiments.TaxSpec(), 400)}, Options{
		Seed:            1,
		SkipServe:       true,
		SkipMetamorphic: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Failed() {
		t.Fatalf("divergences: %+v", rep.Datasets[0].Divergences)
	}
}

// TestRunRespectsCancel verifies that a canceled context aborts the run with
// the context error rather than a divergence report.
func TestRunRespectsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, []Target{targetFromSpec(experiments.AbaloneSpec(), 100)}, Options{}); err == nil {
		t.Fatal("Run on canceled context succeeded")
	}
}

func TestDiffRuleSets(t *testing.T) {
	spec := experiments.ElectricitySpec()
	tgt := targetFromSpec(spec, 300)
	cfg := baseConfig(tgt, tgt.Rel, 64)
	res, err := core.Discover(context.Background(), tgt.Rel, core.WithConfig(cfg))
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	a := res.Rules
	if a.NumRules() == 0 {
		t.Fatal("no rules discovered")
	}
	if d := diffRuleSets(a, a); d != "" {
		t.Fatalf("self-diff: %s", d)
	}

	res2, err := core.Discover(context.Background(), tgt.Rel, core.WithConfig(cfg))
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	b := res2.Rules
	if d := diffRuleSets(a, b); d != "" {
		t.Fatalf("re-discovery diff: %s", d)
	}

	b.Rules[0].Rho = a.Rules[0].Rho + 1e-12
	if d := diffRuleSets(a, b); !strings.Contains(d, "ρ") {
		t.Fatalf("ρ perturbation not detected: %q", d)
	}
	b.Rules[0].Rho = a.Rules[0].Rho
	b.Fallback++
	if d := diffRuleSets(a, b); !strings.Contains(d, "fallback") {
		t.Fatalf("fallback perturbation not detected: %q", d)
	}
}

func TestDriftBoundScalesWithDomain(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "x", Kind: dataset.Numeric},
		dataset.Attribute{Name: "y", Kind: dataset.Numeric},
	)
	rel := dataset.NewRelation(schema)
	rel.MustAppend(dataset.Tuple{dataset.Num(-200), dataset.Num(1)})
	rel.MustAppend(dataset.Tuple{dataset.Num(50), dataset.Num(2)})
	rel.MustAppend(dataset.Tuple{dataset.Null(), dataset.Num(3)})
	if got, want := xScale(rel, []int{0}), 201.0; got != want {
		t.Fatalf("xScale = %g, want %g", got, want)
	}
	if b := driftBound(0.01, 201); b < 2*0.01*201 {
		t.Fatalf("driftBound %g below 2·tol·scale", b)
	}
}
