package verify

// Induction-strategy oracles: every strategy behind the core.Strategy seam
// (the lattice walk, growprune, stability) must produce rules that satisfy
// the Problem 1 per-rule contract on data it was given, degrade gracefully
// on data it was not, and survive the codec. The strategies are run on the
// even rows of the target (an interleaved split — a tail holdout would
// measure temporal extrapolation on the time-series generators, not rule
// quality), and each rule's selection is re-derived with the plain
// tuple-at-a-time scan of the stream oracle, deliberately NOT the vectorized
// filters the strategies ran on.

import (
	"context"
	"fmt"
	"math"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/induction"
)

// holdoutMinRows is the smallest held-out selection the tolerance check
// judges; below it the violation fraction is too noisy to mean anything.
const holdoutMinRows = 16

// holdoutMaxViolFrac bounds the fraction of held-out residuals allowed
// beyond ρ + ρ_M. The generators are noisy and held-out rows were never
// seen, so exact bounds don't apply — but a rule for which more than a
// quarter of unseen selected rows falls outside even the widened band does
// not describe a real regime.
const holdoutMaxViolFrac = 0.25

// strategyOracles runs every registered induction strategy on the target's
// even-row half and checks: non-empty output, the MinSupport floor, the ρ
// bound on each rule's own (independently re-derived) selection, held-out
// tolerance on the odd-row half, coverage for the strategies that promise
// it, and the codec round trip.
func (rn *runner) strategyOracles(ctx context.Context, t Target) error {
	train := dataset.NewRelation(t.Rel.Schema)
	hold := dataset.NewRelation(t.Rel.Schema)
	for i, tp := range t.Rel.Tuples {
		if i%2 == 0 {
			train.Tuples = append(train.Tuples, tp)
		} else {
			hold.Tuples = append(hold.Tuples, tp)
		}
	}
	trainable := trainableRows(train, t.XAttrs, t.YAttr)
	if len(trainable) == 0 {
		return nil
	}
	minSupport := len(t.XAttrs) + 2

	for _, name := range induction.Names() {
		strat, err := induction.Lookup(name)
		if err != nil {
			return err
		}
		cfg := baseConfig(t, train, rn.opts.PredSize)
		cfg.Strategy = strat
		res, err := core.Discover(ctx, train, core.WithConfig(cfg))
		if err != nil {
			return fmt.Errorf("strategy %s: %w", name, err)
		}
		rules := res.Rules

		rn.check("strategy/"+name+"/nonempty", func() string {
			if rules.NumRules() == 0 {
				return fmt.Sprintf("no rules on %d trainable rows", len(trainable))
			}
			return ""
		}())

		// Per-rule support and ρ bound on the rule's own selection.
		floor := 1
		if name != "lattice" {
			floor = minSupport
			if len(trainable) < floor {
				floor = len(trainable)
			}
		}
		supportDetail, rhoDetail := "", ""
		for ri := range rules.Rules {
			rule := &rules.Rules[ri]
			xs, ys := coveredPairs(train, rule)
			if len(ys) < floor && supportDetail == "" {
				supportDetail = fmt.Sprintf("rule %d (%s): support %d < floor %d",
					ri, rule.Cond.String(), len(ys), floor)
			}
			scale := 1.0
			var rho float64
			for i, x := range xs {
				if a := math.Abs(ys[i]); a > scale {
					scale = a
				}
				if d := math.Abs(ys[i] - rule.Model.Predict(x)); d > rho {
					rho = d
				}
			}
			if rho > rule.Rho+1e-9*scale && rhoDetail == "" {
				rhoDetail = fmt.Sprintf("rule %d: max residual %g beyond published ρ %g on its own %d-row selection",
					ri, rho, rule.Rho, len(ys))
			}
		}
		rn.check("strategy/"+name+"/support", supportDetail)
		rn.check("strategy/"+name+"/rho-own-selection", rhoDetail)

		// Held-out tolerance: on the odd-row half, rules selecting enough
		// rows must keep most residuals within ρ + ρ_M.
		holdDetail := ""
		for ri := range rules.Rules {
			rule := &rules.Rules[ri]
			xs, ys := coveredPairs(hold, rule)
			if len(ys) < holdoutMinRows {
				continue
			}
			viol := 0
			for i, x := range xs {
				if math.Abs(ys[i]-rule.Model.Predict(x)) > rule.Rho+t.RhoM {
					viol++
				}
			}
			if frac := float64(viol) / float64(len(ys)); frac > holdoutMaxViolFrac && holdDetail == "" {
				holdDetail = fmt.Sprintf("rule %d (%s): %.0f%% of %d held-out rows beyond ρ+ρ_M",
					ri, rule.Cond.String(), frac*100, len(ys))
			}
		}
		rn.check("strategy/"+name+"/holdout", holdDetail)

		// Coverage: the lattice walk and growprune guarantee every trainable
		// row is selected by some rule; stability deliberately trades
		// coverage for reproducibility, so it is exempt.
		if name != "stability" {
			covDetail := ""
			coveredRows := make([]bool, train.Len())
			for ri := range rules.Rules {
				rule := &rules.Rules[ri]
				for ti, tp := range train.Tuples {
					if _, ok := rule.Cond.MatchConjunction(tp); ok {
						coveredRows[ti] = true
					}
				}
			}
			for _, r := range trainable {
				if !coveredRows[r] {
					covDetail = fmt.Sprintf("trainable row %d covered by no rule", r)
					break
				}
			}
			rn.check("strategy/"+name+"/coverage", covDetail)
		}

		ct := t
		ct.Rel = train
		rn.codecOracle(ct, rules, "strategy-"+name)
	}
	return nil
}
