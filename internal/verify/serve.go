package verify

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"

	"github.com/crrlab/crr/internal/cliutil"
	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/serve"
	"github.com/crrlab/crr/pkg/client"
)

// Served-endpoint parity: the HTTP data plane must classify exactly like the
// in-process rule set, over EVERY negotiated format. Tuples cross the wire
// as name-keyed JSON objects and as binary columnar frames (through the
// public SDK); predictions come back as JSON numbers and float64 lanes.
// Go's JSON encoder emits the shortest round-tripping representation for
// finite float64s and the binary format carries the exact bits, so parity
// is checked bitwise on all paths.

// singleProbes bounds how many leading tuples are additionally checked
// through the single-tuple request shape (one HTTP round trip each); the
// batch shape covers the whole relation in one request.
const singleProbes = 32

// predictResponse mirrors the /v1/predict wire shape.
type predictResponse struct {
	Y           string `json:"y"`
	Count       int    `json:"count"`
	Predictions []struct {
		Value   float64 `json:"value"`
		Covered bool    `json:"covered"`
	} `json:"predictions"`
}

// checkResponse mirrors the /v1/check wire shape.
type checkResponse struct {
	Checked    int `json:"checked"`
	Violations []struct {
		Tuple     int      `json:"tuple"`
		Rule      int      `json:"rule"`
		Observed  float64  `json:"observed"`
		Predicted float64  `json:"predicted"`
		Excess    float64  `json:"excess"`
		Repair    *float64 `json:"repair,omitempty"`
	} `json:"violations"`
}

// serveOracles spins up the serving stack on the given rule set and checks
// /v1/predict (single and batch shapes) and /v1/check against the in-process
// results on every tuple of the target relation.
func (rn *runner) serveOracles(t Target, rules *core.RuleSet, label string) error {
	srv, err := serve.NewFromRuleSet(serve.Config{}, rules, "verify")
	if err != nil {
		return fmt.Errorf("serve %s: %w", label, err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rel := t.Rel
	wire := make([]map[string]any, len(rel.Tuples))
	for i, tp := range rel.Tuples {
		wire[i] = wireTuple(rel.Schema, tp)
	}

	// Batch predict: one request covering the whole relation.
	var pr predictResponse
	if err := postJSON(ts.URL+"/v1/predict", map[string]any{"tuples": wire}, &pr); err != nil {
		return fmt.Errorf("serve %s predict: %w", label, err)
	}
	detail := ""
	if pr.Count != len(wire) || len(pr.Predictions) != len(wire) {
		detail = fmt.Sprintf("served %d predictions for %d tuples", len(pr.Predictions), len(wire))
	} else if pr.Y != rules.YName() {
		detail = fmt.Sprintf("served target %q, rule set targets %q", pr.Y, rules.YName())
	} else {
		for i, tp := range rel.Tuples {
			want, wcov := rules.Predict(tp)
			got := pr.Predictions[i]
			if got.Covered != wcov || !bitsEqual(got.Value, want) {
				detail = fmt.Sprintf("row %d: served (%g,%v) vs in-process (%g,%v)",
					i, got.Value, got.Covered, want, wcov)
				break
			}
		}
	}
	rn.check("serve/predict-batch/"+label, detail)

	// Single predict: per-tuple request shape on the leading rows.
	detail = ""
	for i := 0; i < len(wire) && i < singleProbes; i++ {
		var sr predictResponse
		if err := postJSON(ts.URL+"/v1/predict", map[string]any{"tuple": wire[i]}, &sr); err != nil {
			return fmt.Errorf("serve %s predict single: %w", label, err)
		}
		want, wcov := rules.Predict(rel.Tuples[i])
		if len(sr.Predictions) != 1 {
			detail = fmt.Sprintf("row %d: %d predictions for a single-tuple request", i, len(sr.Predictions))
			break
		}
		if got := sr.Predictions[0]; got.Covered != wcov || !bitsEqual(got.Value, want) {
			detail = fmt.Sprintf("row %d: served (%g,%v) vs in-process (%g,%v)",
				i, got.Value, got.Covered, want, wcov)
			break
		}
	}
	rn.check("serve/predict-single/"+label, detail)

	// Check: served violations vs core.Violations + core.Repair.
	var cr checkResponse
	if err := postJSON(ts.URL+"/v1/check", map[string]any{"tuples": wire}, &cr); err != nil {
		return fmt.Errorf("serve %s check: %w", label, err)
	}
	rn.check("serve/check/"+label, diffServedViolations(rel, rules, &cr))

	// Binary columnar path through the public SDK: the same batch, answered
	// bitwise-identically to the in-process classifier — and therefore to
	// the JSON path just verified.
	if err := rn.serveBinaryOracles(ts.URL, t, rules, label); err != nil {
		return err
	}
	return nil
}

// serveBinaryOracles drives /v1/predict and /v1/check through pkg/client in
// binary columnar format and holds the answers to the in-process results.
func (rn *runner) serveBinaryOracles(url string, t Target, rules *core.RuleSet, label string) error {
	rel := t.Rel
	batch, err := cliutil.ClientBatch(rel)
	if err != nil {
		return fmt.Errorf("serve %s binary batch: %w", label, err)
	}
	c := client.New(url, client.WithFormat(client.FormatBinary))
	res, err := c.Predict(context.Background(), batch, client.WithExplain())
	if err != nil {
		return fmt.Errorf("serve %s binary predict: %w", label, err)
	}
	detail := ""
	if len(res.Values) != len(rel.Tuples) {
		detail = fmt.Sprintf("served %d predictions for %d tuples", len(res.Values), len(rel.Tuples))
	} else {
		for i, tp := range rel.Tuples {
			want, wcov := rules.Predict(tp)
			if res.Covered[i] != wcov || !bitsEqual(res.Values[i], want) {
				detail = fmt.Sprintf("row %d: binary (%g,%v) vs in-process (%g,%v)",
					i, res.Values[i], res.Covered[i], want, wcov)
				break
			}
			if !res.Covered[i] && res.RuleIDs[i] != -1 {
				detail = fmt.Sprintf("row %d: uncovered but rule id %d", i, res.RuleIDs[i])
				break
			}
		}
	}
	rn.check("serve/predict-binary/"+label, detail)

	batch, err = cliutil.ClientBatch(rel)
	if err != nil {
		return fmt.Errorf("serve %s binary batch: %w", label, err)
	}
	rep, err := c.Check(context.Background(), batch)
	if err != nil {
		return fmt.Errorf("serve %s binary check: %w", label, err)
	}
	detail = ""
	want := core.Violations(rel, rules)
	if rep.Checked != len(rel.Tuples) || len(rep.Violations) != len(want) {
		detail = fmt.Sprintf("binary check %d/%d vs in-process %d/%d",
			rep.Checked, len(rep.Violations), len(rel.Tuples), len(want))
	} else {
		for i, got := range rep.Violations {
			w := want[i]
			if got.Tuple != w.TupleIndex || got.Rule != w.RuleIndex ||
				!bitsEqual(got.Observed, w.Observed) || !bitsEqual(got.Predicted, w.Predicted) ||
				!bitsEqual(got.Excess, w.Excess) {
				detail = fmt.Sprintf("violation %d: binary %+v vs in-process %+v", i, got, w)
				break
			}
		}
	}
	rn.check("serve/check-binary/"+label, detail)
	return nil
}

func diffServedViolations(rel *dataset.Relation, rules *core.RuleSet, cr *checkResponse) string {
	want := core.Violations(rel, rules)
	if cr.Checked != len(rel.Tuples) {
		return fmt.Sprintf("checked %d of %d tuples", cr.Checked, len(rel.Tuples))
	}
	if len(cr.Violations) != len(want) {
		return fmt.Sprintf("violation count %d vs %d", len(cr.Violations), len(want))
	}
	for i, got := range cr.Violations {
		w := want[i]
		if got.Tuple != w.TupleIndex || got.Rule != w.RuleIndex ||
			!bitsEqual(got.Observed, w.Observed) || !bitsEqual(got.Predicted, w.Predicted) ||
			!bitsEqual(got.Excess, w.Excess) {
			return fmt.Sprintf("violation %d: served %+v vs in-process %+v", i, got, w)
		}
		repair, rok := core.Repair(rel.Tuples[w.TupleIndex], rules)
		switch {
		case rok && got.Repair == nil:
			return fmt.Sprintf("violation %d: repair %g missing from response", i, repair)
		case !rok && got.Repair != nil:
			return fmt.Sprintf("violation %d: unexpected repair %g", i, *got.Repair)
		case rok && !bitsEqual(*got.Repair, repair):
			return fmt.Sprintf("violation %d: repair %g vs %g", i, *got.Repair, repair)
		}
	}
	return ""
}

// wireTuple encodes a tuple into the serving wire form: name-keyed values,
// null cells omitted (the handler treats absent keys as missing).
func wireTuple(schema *dataset.Schema, tp dataset.Tuple) map[string]any {
	obj := make(map[string]any, len(tp))
	for i := range tp {
		if tp[i].Null {
			continue
		}
		a := schema.Attr(i)
		if a.Kind == dataset.Categorical {
			obj[a.Name] = tp[i].Str
		} else {
			obj[a.Name] = tp[i].Num
		}
	}
	return obj
}

func postJSON(url string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 1024))
		return fmt.Errorf("%s: %s: %s", url, r.Status, msg)
	}
	return json.NewDecoder(r.Body).Decode(resp)
}
