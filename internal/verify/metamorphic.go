package verify

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
)

// Metamorphic invariants: discovery is a function of the data's semantics,
// not its presentation. Four presentation-preserving transforms must leave
// the discovered rule semantics invariant:
//
//   - Row permutation: the relation is a bag; shuffling rows may reorder the
//     rule list but must classify every tuple the same.
//   - Row duplication: doubling every row (with MinSupport doubled to keep
//     the split-stopping decisions aligned) changes no fitted model.
//   - Attribute renaming: discovery works on column indices, so renaming is
//     invisible — the rule sets must be bitwise identical.
//   - Unit translation: shifting every x by Δ and every y by δ (a change of
//     measurement origin) must shift predictions by exactly δ.
//
// Predictions are compared with a small relative tolerance where the
// transform legitimately reorders floating-point accumulation (permutation,
// duplication, translation); coverage is always exact. On a violation the
// failing transform is re-run on shrinking row subsets (a budgeted ddmin) to
// attach a minimized reproducer.

// Unit-translation shifts. Powers of two, so adding them to the generators'
// moderate value ranges is exact and predicate cut points translate with the
// data.
const (
	metaShiftX = 32.0
	metaShiftY = 0.5
)

// metaCheck runs one transform on a target and returns a divergence detail
// ("" on agreement).
type metaCheck func(ctx context.Context, rn *runner, t Target) (string, error)

// metamorphic runs the transform suite on the target.
func (rn *runner) metamorphic(ctx context.Context, t Target) error {
	checks := []struct {
		name  string
		check metaCheck
	}{
		{"metamorphic/permutation", permutationCheck},
		{"metamorphic/duplication", duplicationCheck},
		{"metamorphic/renaming", renamingCheck},
		{"metamorphic/translation", translationCheck},
	}
	for _, c := range checks {
		if err := ctx.Err(); err != nil {
			return err
		}
		detail, err := c.check(ctx, rn, t)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		if detail == "" {
			rn.pass()
			continue
		}
		rn.failRepro(c.name, detail, rn.minimizeRows(ctx, t, c.check))
	}
	return nil
}

// discoverRules mines rel with the target's oracle configuration and an
// explicit MinSupport (the transforms scale it alongside the data).
func (rn *runner) discoverRules(ctx context.Context, t Target, rel *dataset.Relation, minSupport int) (*core.RuleSet, error) {
	cfg := baseConfig(t, rel, rn.opts.PredSize)
	cfg.MinSupport = minSupport
	res, err := core.Discover(ctx, rel, core.WithConfig(cfg))
	if err != nil {
		return nil, err
	}
	return res.Rules, nil
}

// minSupportFor is the engine's default floor, pinned explicitly so the
// duplication transform can double it.
func minSupportFor(t Target) int { return len(t.XAttrs) + 2 }

// semClose compares predictions allowing for reordered floating-point
// accumulation in the model fits.
func semClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// permutationCheck: discovery on a shuffled clone must classify every
// original tuple the same.
func permutationCheck(ctx context.Context, rn *runner, t Target) (string, error) {
	base, err := rn.discoverRules(ctx, t, t.Rel, minSupportFor(t))
	if err != nil {
		return "", err
	}
	perm := t.Rel.Clone()
	perm.Shuffle(rand.New(rand.NewSource(rn.opts.Seed ^ 0x5eed)))
	permuted, err := rn.discoverRules(ctx, t, perm, minSupportFor(t))
	if err != nil {
		return "", err
	}
	for i, tp := range t.Rel.Tuples {
		p1, c1 := base.Predict(tp)
		p2, c2 := permuted.Predict(tp)
		if c1 != c2 {
			return fmt.Sprintf("row %d: coverage %v vs %v after shuffling", i, c1, c2), nil
		}
		if c1 && !semClose(p1, p2) {
			return fmt.Sprintf("row %d: prediction %g vs %g after shuffling", i, p1, p2), nil
		}
	}
	return "", nil
}

// duplicationCheck: doubling every row (and MinSupport with it) must leave
// classification unchanged.
func duplicationCheck(ctx context.Context, rn *runner, t Target) (string, error) {
	base, err := rn.discoverRules(ctx, t, t.Rel, minSupportFor(t))
	if err != nil {
		return "", err
	}
	dup := &dataset.Relation{Schema: t.Rel.Schema}
	dup.Tuples = append(append([]dataset.Tuple{}, t.Rel.Tuples...), t.Rel.Tuples...)
	doubled, err := rn.discoverRules(ctx, t, dup, 2*minSupportFor(t))
	if err != nil {
		return "", err
	}
	for i, tp := range t.Rel.Tuples {
		p1, c1 := base.Predict(tp)
		p2, c2 := doubled.Predict(tp)
		if c1 != c2 {
			return fmt.Sprintf("row %d: coverage %v vs %v after duplication", i, c1, c2), nil
		}
		if c1 && !semClose(p1, p2) {
			return fmt.Sprintf("row %d: prediction %g vs %g after duplication", i, p1, p2), nil
		}
	}
	return "", nil
}

// renamingCheck: discovery must be invisible to attribute names — the rule
// sets are compared bitwise.
func renamingCheck(ctx context.Context, rn *runner, t Target) (string, error) {
	base, err := rn.discoverRules(ctx, t, t.Rel, minSupportFor(t))
	if err != nil {
		return "", err
	}
	attrs := t.Rel.Schema.Attrs()
	for i := range attrs {
		attrs[i].Name = fmt.Sprintf("c%d_%s", i, attrs[i].Name)
	}
	schema, err := dataset.NewSchema(attrs...)
	if err != nil {
		return "", err
	}
	renamed, err := rn.discoverRules(ctx, t, &dataset.Relation{Schema: schema, Tuples: t.Rel.Tuples}, minSupportFor(t))
	if err != nil {
		return "", err
	}
	if d := diffRuleSets(base, renamed); d != "" {
		return "renaming changed the rules: " + d, nil
	}
	return "", nil
}

// translationCheck: shifting x by Δ and y by δ must shift every prediction
// by exactly δ and change no coverage.
func translationCheck(ctx context.Context, rn *runner, t Target) (string, error) {
	base, err := rn.discoverRules(ctx, t, t.Rel, minSupportFor(t))
	if err != nil {
		return "", err
	}
	shifted := t.Rel.Clone()
	for _, tp := range shifted.Tuples {
		for _, a := range t.XAttrs {
			if !tp[a].Null {
				tp[a].Num += metaShiftX
			}
		}
		if !tp[t.YAttr].Null {
			tp[t.YAttr].Num += metaShiftY
		}
	}
	tt := t
	tt.Rel = shifted
	translated, err := rn.discoverRules(ctx, tt, shifted, minSupportFor(t))
	if err != nil {
		return "", err
	}
	for i := range t.Rel.Tuples {
		p1, c1 := base.Predict(t.Rel.Tuples[i])
		p2, c2 := translated.Predict(shifted.Tuples[i])
		if c1 != c2 {
			return fmt.Sprintf("row %d: coverage %v vs %v after translation", i, c1, c2), nil
		}
		if c1 && !semClose(p2, p1+metaShiftY) {
			return fmt.Sprintf("row %d: prediction %g, want %g+δ = %g", i, p2, p1, p1+metaShiftY), nil
		}
	}
	return "", nil
}

// minimizeRows shrinks the target's row set while the check keeps failing —
// a budgeted ddmin over complements — and renders the surviving subset as a
// reproducer description. Returns "" if the failure does not reproduce on
// the full set (a flaky check is itself worth reporting as such).
func (rn *runner) minimizeRows(ctx context.Context, t Target, check metaCheck) string {
	failsOn := func(rows []int) bool {
		if ctx.Err() != nil {
			return false
		}
		sub := &dataset.Relation{Schema: t.Rel.Schema, Tuples: make([]dataset.Tuple, len(rows))}
		for i, r := range rows {
			sub.Tuples[i] = t.Rel.Tuples[r]
		}
		tt := t
		tt.Rel = sub
		detail, err := check(ctx, rn, tt)
		return err == nil && detail != ""
	}

	rows := make([]int, t.Rel.Len())
	for i := range rows {
		rows[i] = i
	}
	if !failsOn(rows) {
		return ""
	}
	budget := 48 // each probe runs discovery twice; cap the total work
	parts := 2
	for len(rows) > 1 && budget > 0 {
		chunk := (len(rows) + parts - 1) / parts
		reduced := false
		for start := 0; start < len(rows) && budget > 0; start += chunk {
			end := min(start+chunk, len(rows))
			comp := append(append([]int(nil), rows[:start]...), rows[end:]...)
			if len(comp) == 0 {
				continue
			}
			budget--
			if failsOn(comp) {
				rows = comp
				parts = max(2, parts-1)
				reduced = true
				break
			}
		}
		if !reduced {
			if parts >= len(rows) {
				break
			}
			parts = min(len(rows), 2*parts)
		}
	}

	shown := rows
	suffix := ""
	if len(shown) > 24 {
		shown = shown[:24]
		suffix = ", ..."
	}
	return fmt.Sprintf("reproduces on %d of %d rows; row indices %v%s (seed %d)",
		len(rows), t.Rel.Len(), shown, suffix, rn.opts.Seed)
}
