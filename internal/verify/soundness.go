package verify

import (
	"context"
	"fmt"
	"math"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
)

// Inference-soundness checking: Algorithm 2 is replayed with a Trace hook so
// every individual inference application (Translation, Fusion, Implied drop)
// can be verified against the data, then the whole pre/post rule sets are
// compared. The checks encode the paper's soundness propositions:
//
//   - Translation (Propositions 5, 9): the rewritten rule covers exactly the
//     tuples the original covered, keeps its ρ bitwise, and predicts within
//     the tolerance-induced drift bound of the original.
//   - Fusion + Generalization (Propositions 3, 4): the merged rule's ρ is
//     the bitwise max of the inputs, its coverage the union, and its
//     prediction equals whichever input's first-match applies.
//   - Implied drop (Propositions 2, 4, Definition 2): core.Implies must
//     re-confirm, the dropped rule's coverage must be a subset of the
//     keeper's, and the keeper must predict within drift of the dropped rule
//     everywhere the dropped rule applied.
//
// Exact compaction (the default model tolerance) is always verified; when
// the target carries a loose CompactTol the same checks run again under the
// documented bounded-drift contract (driftBound over the domain's x scale).

// soundness verifies compaction on the target and returns the exact-
// tolerance compacted rule set for the downstream oracles.
func (rn *runner) soundness(ctx context.Context, t Target, rules *core.RuleSet) (*core.RuleSet, error) {
	compacted, err := rn.soundnessPass(ctx, t, rules, 0, "exact")
	if err != nil {
		return nil, err
	}
	if t.CompactTol > 0 {
		if _, err := rn.soundnessPass(ctx, t, rules, t.CompactTol, "loose"); err != nil {
			return nil, err
		}
	}
	return compacted, nil
}

// soundnessPass compacts rules under one model tolerance with tracing and
// verifies every application plus the whole-set contract. tol == 0 selects
// the engine's exact default.
func (rn *runner) soundnessPass(ctx context.Context, t Target, rules *core.RuleSet, tol float64, label string) (*core.RuleSet, error) {
	var events []core.TraceEvent
	compacted, stats, err := core.CompactCtx(ctx, rules, core.CompactOptions{
		ModelTol: tol,
		Trace:    func(e core.TraceEvent) { events = append(events, e) },
	})
	if err != nil {
		return nil, fmt.Errorf("compact (%s): %w", label, err)
	}
	if got, want := len(events), stats.Translations+stats.Fusions+stats.Implied; got != want {
		rn.fail("soundness/trace/"+label, fmt.Sprintf("%d events traced, stats report %d applications", got, want))
	} else {
		rn.pass()
	}
	rn.cur.SoundnessApps += len(events)

	// The drift bound uses the tolerance the models were actually unified
	// under (the engine substitutes its exact default for 0) over the
	// data's domain scale.
	effTol := tol
	if effTol <= 0 {
		effTol = 1e-6
	}
	bound := driftBound(effTol, xScale(t.Rel, t.XAttrs))
	for i, ev := range events {
		var detail string
		switch ev.Kind {
		case core.TraceTranslation:
			detail = checkTranslation(t.Rel, ev, bound)
		case core.TraceFusion:
			detail = checkFusion(t.Rel, ev)
		case core.TraceImplied:
			detail = checkImplied(t.Rel, ev, bound)
		default:
			detail = fmt.Sprintf("unknown trace kind %v", ev.Kind)
		}
		if detail != "" {
			detail = fmt.Sprintf("application %d (%v): %s", i, ev.Kind, detail)
		}
		rn.check(fmt.Sprintf("soundness/%v/%s", ev.Kind, label), detail)
	}

	rn.check("soundness/whole-set/"+label, checkWholeSet(t, rules, compacted, bound))
	if compacted.NumRules() > rules.NumRules() {
		rn.fail("soundness/never-larger/"+label,
			fmt.Sprintf("compaction grew the set: %d → %d rules", rules.NumRules(), compacted.NumRules()))
	} else {
		rn.pass()
	}
	return compacted, nil
}

// checkTranslation verifies one Translation application: Pre[0] is the
// pivot supplying the model, Pre[1] the rewritten rule, Post the result.
func checkTranslation(rel *dataset.Relation, ev core.TraceEvent, bound float64) string {
	if len(ev.Pre) != 2 || ev.Post == nil {
		return "malformed event"
	}
	pivot, pre, post := &ev.Pre[0], &ev.Pre[1], ev.Post
	if !bitsEqual(pre.Rho, post.Rho) {
		return fmt.Sprintf("ρ changed: %v → %v", pre.Rho, post.Rho)
	}
	if post.Model == nil || !post.Model.Equal(pivot.Model, 0) {
		return "rewritten rule does not carry the pivot's model"
	}
	for i, tp := range rel.Tuples {
		if pre.Covers(tp) != post.Covers(tp) {
			return fmt.Sprintf("coverage changed at row %d", i)
		}
		pp, pok := pre.Predict(tp)
		qp, qok := post.Predict(tp)
		if pok != qok {
			return fmt.Sprintf("predictability changed at row %d", i)
		}
		if pok {
			if d := math.Abs(pp - qp); d > bound {
				return fmt.Sprintf("row %d: prediction drift %g exceeds bound %g", i, d, bound)
			}
		}
	}
	return ""
}

// checkFusion verifies one Fusion application: Pre[0] absorbed Pre[1] into
// Post (Generalization aligning ρ, then Fusion of the conditions).
func checkFusion(rel *dataset.Relation, ev core.TraceEvent) string {
	if len(ev.Pre) != 2 || ev.Post == nil {
		return "malformed event"
	}
	a, b, post := &ev.Pre[0], &ev.Pre[1], ev.Post
	wantRho := math.Max(a.Rho, b.Rho)
	if !bitsEqual(post.Rho, wantRho) {
		return fmt.Sprintf("ρ %v, want max(%v, %v)", post.Rho, a.Rho, b.Rho)
	}
	for i, tp := range rel.Tuples {
		ca, cb, cp := a.Covers(tp), b.Covers(tp), post.Covers(tp)
		if cp != (ca || cb) {
			return fmt.Sprintf("row %d: coverage %v, want union %v", i, cp, ca || cb)
		}
		if !cp {
			continue
		}
		// First-match: the fused condition lists a's conjunctions first.
		var want float64
		var wok bool
		if ca {
			want, wok = a.Predict(tp)
		} else {
			want, wok = b.Predict(tp)
		}
		got, gok := post.Predict(tp)
		if gok != wok {
			return fmt.Sprintf("row %d: predictability %v, want %v", i, gok, wok)
		}
		if gok && !bitsEqual(got, want) {
			return fmt.Sprintf("row %d: prediction %g, want %g", i, got, want)
		}
	}
	return ""
}

// checkImplied verifies one Implied drop: Pre[0] (keeper) implies
// Pre[1] (dropped).
func checkImplied(rel *dataset.Relation, ev core.TraceEvent, bound float64) string {
	if len(ev.Pre) != 2 || ev.Post != nil {
		return "malformed event"
	}
	keeper, dropped := &ev.Pre[0], &ev.Pre[1]
	if !core.Implies(keeper, dropped) {
		return "core.Implies does not re-confirm the drop (Definition 2 consistency)"
	}
	if dropped.Rho < keeper.Rho {
		return fmt.Sprintf("dropped ρ %v tighter than keeper ρ %v (Generalization runs the other way)",
			dropped.Rho, keeper.Rho)
	}
	for i, tp := range rel.Tuples {
		if !dropped.Covers(tp) {
			continue
		}
		if !keeper.Covers(tp) {
			return fmt.Sprintf("row %d covered by dropped rule but not by keeper", i)
		}
		dp, dok := dropped.Predict(tp)
		kp, kok := keeper.Predict(tp)
		if dok != kok {
			return fmt.Sprintf("row %d: predictability keeper %v vs dropped %v", i, kok, dok)
		}
		if dok {
			if d := math.Abs(dp - kp); d > bound {
				return fmt.Sprintf("row %d: keeper drifts %g from dropped rule (bound %g)", i, d, bound)
			}
		}
	}
	return ""
}

// checkWholeSet compares the input and compacted rule sets end to end:
// identical coverage and bounded prediction drift on every tuple, and every
// compacted rule satisfied by the data within ρ plus drift. The slack is
// doubled against the per-application bound because a rule can pass through
// two drifting inferences (Translation then Implied drop).
func checkWholeSet(t Target, pre, post *core.RuleSet, bound float64) string {
	rel := t.Rel
	prePreds, preCov := pre.PredictBatch(rel)
	postPreds, postCov := post.PredictBatch(rel)
	for i := range rel.Tuples {
		if preCov[i] != postCov[i] {
			return fmt.Sprintf("row %d: coverage %v → %v", i, preCov[i], postCov[i])
		}
		if !preCov[i] {
			continue
		}
		if d := math.Abs(prePreds[i] - postPreds[i]); d > 2*bound {
			return fmt.Sprintf("row %d: prediction drift %g exceeds bound %g", i, d, 2*bound)
		}
	}
	// Bias: every compacted rule holds on the data within ρ plus drift.
	for i, tp := range rel.Tuples {
		if tp[post.YAttr].Null {
			continue
		}
		for ri := range post.Rules {
			r := &post.Rules[ri]
			p, ok := r.Predict(tp)
			if !ok {
				continue
			}
			if d := math.Abs(tp[post.YAttr].Num - p); d > r.Rho+2*bound {
				return fmt.Sprintf("rule %d violates bias at row %d: |%g − %g| = %g > ρ+drift %g",
					ri, i, tp[post.YAttr].Num, p, d, r.Rho+2*bound)
			}
		}
	}
	return ""
}
