package verify

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"github.com/crrlab/crr/internal/colstore"
	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
)

// The out-of-core oracle: the mmap'd column store must be a perfect mirror
// of the in-memory columnar representation. The target's relation is built
// into an on-disk store with a deliberately small chunk budget (so the build
// exercises run-partitioned dictionary merging and multi-chunk flushing),
// re-opened with full checksum verification, and checked two ways:
//
//   - lane parity: every numeric lane, code lane, dictionary and null bitmap
//     of the adopted ColumnSet must be bitwise-identical to the ColumnSet
//     built directly from the relation;
//   - discovery parity: DiscoverColumns over the store must reproduce the
//     canonical sequential columnar rule set bitwise — conditions, ρ bits
//     and model coefficients.

// colstoreChunkRows keeps the oracle build multi-chunk on every target size.
const colstoreChunkRows = 173

// colstoreOracle builds, reopens and diffs the store. rules is the canonical
// sequential columnar result from the discovery matrix.
func (rn *runner) colstoreOracle(ctx context.Context, t Target, rules *core.RuleSet) error {
	dir, err := os.MkdirTemp("", "crr-verify-colstore-*")
	if err != nil {
		return fmt.Errorf("colstore oracle: %w", err)
	}
	defer os.RemoveAll(dir)
	storeDir := filepath.Join(dir, "store")

	if err := colstore.Build(storeDir, t.Rel, colstoreChunkRows); err != nil {
		rn.fail("colstore/build", err.Error())
		return nil
	}
	st, err := colstore.OpenWith(storeDir, colstore.OpenOptions{
		VerifyChecksums: true,
		Telemetry:       rn.opts.Telemetry,
	})
	if err != nil {
		rn.fail("colstore/open", err.Error())
		return nil
	}
	defer st.Close()

	rn.check("colstore/lanes-bitwise", diffColumnSets(dataset.NewColumnSet(t.Rel), st.Columns()))

	cfg := baseConfig(t, t.Rel, rn.opts.PredSize)
	res, err := core.DiscoverColumns(ctx, st.Columns(), core.WithConfig(cfg))
	if err != nil {
		return fmt.Errorf("colstore oracle: discover over store: %w", err)
	}
	rn.check("colstore/discover-bitwise", diffRuleSets(rules, res.Rules))
	return nil
}

// diffColumnSets compares two column sets lane by lane, bitwise, returning
// "" on identity and the first disagreement otherwise.
func diffColumnSets(want, got *dataset.ColumnSet) string {
	if want.Len() != got.Len() {
		return fmt.Sprintf("row count %d vs %d", want.Len(), got.Len())
	}
	if w, g := want.Schema.Len(), got.Schema.Len(); w != g {
		return fmt.Sprintf("schema arity %d vs %d", w, g)
	}
	for a := 0; a < want.Schema.Len(); a++ {
		attr := want.Schema.Attr(a)
		if g := got.Schema.Attr(a); g != attr {
			return fmt.Sprintf("attr %d: %+v vs %+v", a, attr, g)
		}
		if attr.Kind == dataset.Numeric {
			w, g := want.Float(a), got.Float(a)
			for r := range w {
				if math.Float64bits(w[r]) != math.Float64bits(g[r]) {
					return fmt.Sprintf("attr %d row %d: %g vs %g", a, r, w[r], g[r])
				}
			}
		} else {
			wc, gc := want.Codes(a), got.Codes(a)
			for r := range wc {
				if wc[r] != gc[r] {
					return fmt.Sprintf("attr %d row %d: code %d vs %d", a, r, wc[r], gc[r])
				}
			}
			wd, gd := want.Dict(a), got.Dict(a)
			if len(wd) != len(gd) {
				return fmt.Sprintf("attr %d: dictionary size %d vs %d", a, len(wd), len(gd))
			}
			for i := range wd {
				if wd[i] != gd[i] {
					return fmt.Sprintf("attr %d: dictionary entry %d %q vs %q", a, i, wd[i], gd[i])
				}
			}
		}
		for r := 0; r < want.Len(); r++ {
			if want.IsNull(a, r) != got.IsNull(a, r) {
				return fmt.Sprintf("attr %d row %d: null bit %v vs %v", a, r, want.IsNull(a, r), got.IsNull(a, r))
			}
		}
	}
	return ""
}
