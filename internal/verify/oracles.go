package verify

import (
	"bytes"
	"context"
	"fmt"
	"math"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
)

// Cross-engine oracles: the discovery matrix over the four engine modes and
// the row-vs-columnar parity checks of every classification surface.

// discoveryMatrix mines the target in all four engine modes and checks the
// engines against each other:
//
//   - seq-col vs seq-row must be bitwise identical (the columnar engine's
//     parity contract).
//   - The parallel modes are deterministic only as a coverage (model
//     sharing depends on pop order), so they are checked semantically:
//     every trainable row covered, every rule satisfied by the data.
//
// The sequential columnar result — the canonical engine — is returned for
// the downstream oracles.
func (rn *runner) discoveryMatrix(ctx context.Context, t Target) (*core.RuleSet, error) {
	type mode struct {
		name    string
		rowScan bool
		workers int
	}
	modes := []mode{
		{"seq-col", false, 1},
		{"seq-row", true, 1},
		{"par-col", false, rn.opts.Workers},
		{"par-row", true, rn.opts.Workers},
	}
	results := make(map[string]*core.RuleSet, len(modes))
	for _, m := range modes {
		cfg := baseConfig(t, t.Rel, rn.opts.PredSize)
		cfg.RowScan = m.rowScan
		cfg.Workers = m.workers
		res, err := core.Discover(ctx, t.Rel, core.WithConfig(cfg))
		if err != nil {
			return nil, fmt.Errorf("discover %s: %w", m.name, err)
		}
		results[m.name] = res.Rules
	}

	rn.check("discover/seq-bitwise", diffRuleSets(results["seq-col"], results["seq-row"]))

	trainable := trainableRows(t.Rel, t.XAttrs, t.YAttr)
	for _, m := range modes {
		rules := results[m.name]
		_, covered := rules.PredictBatch(t.Rel)
		detail := ""
		for _, ri := range trainable {
			if !covered[ri] {
				detail = fmt.Sprintf("trainable row %d not covered by any rule", ri)
				break
			}
		}
		rn.check("discover/coverage/"+m.name, detail)

		detail = ""
		if vs := core.Violations(t.Rel, rules); len(vs) > 0 {
			v := vs[0]
			detail = fmt.Sprintf("rule %d violated by row %d: |%g - %g| > ρ+slack",
				v.RuleIndex, v.TupleIndex, v.Observed, v.Predicted)
		}
		rn.check("discover/holds/"+m.name, detail)
	}
	return results["seq-col"], nil
}

// diffRuleSets structurally and bitwise compares two rule sets, returning ""
// on identity and a description of the first disagreement otherwise.
// Conditions compare through their exact rendering (FormatFloat 'g' -1
// round-trips float64), ρ through Float64bits, models through Equal with
// tolerance 0.
func diffRuleSets(a, b *core.RuleSet) string {
	if a.NumRules() != b.NumRules() {
		return fmt.Sprintf("rule count %d vs %d", a.NumRules(), b.NumRules())
	}
	if a.YAttr != b.YAttr {
		return fmt.Sprintf("YAttr %d vs %d", a.YAttr, b.YAttr)
	}
	if !bitsEqual(a.Fallback, b.Fallback) {
		return fmt.Sprintf("fallback %g vs %g", a.Fallback, b.Fallback)
	}
	for i := range a.Rules {
		ra, rb := &a.Rules[i], &b.Rules[i]
		if ca, cb := ra.Cond.String(), rb.Cond.String(); ca != cb {
			return fmt.Sprintf("rule %d condition %q vs %q", i, ca, cb)
		}
		if !bitsEqual(ra.Rho, rb.Rho) {
			return fmt.Sprintf("rule %d ρ %v vs %v", i, ra.Rho, rb.Rho)
		}
		if ra.Model == nil || rb.Model == nil || !ra.Model.Equal(rb.Model, 0) {
			return fmt.Sprintf("rule %d models differ: %v vs %v", i, ra.Model, rb.Model)
		}
	}
	return ""
}

// scanPredict is the linear-scan reference for RuleSet.Predict: first rule
// in rule order whose condition matches with non-null X cells supplies the
// prediction. The interval-indexed Predict must be bitwise identical to it.
func scanPredict(s *core.RuleSet, tp dataset.Tuple) (float64, bool) {
	for ri := range s.Rules {
		if p, ok := s.Rules[ri].Predict(tp); ok {
			return p, true
		}
	}
	return s.Fallback, false
}

// classificationOracles runs the row-vs-columnar (and index-vs-scan) parity
// checks of every classification surface on the target's relation. label
// distinguishes the discovered from the compacted rule set in oracle names.
func (rn *runner) classificationOracles(t Target, rules *core.RuleSet, label string) {
	rel := t.Rel

	// Predict: interval index vs linear rule scan, per tuple, bitwise.
	detail := ""
	for i, tp := range rel.Tuples {
		ip, icov := rules.Predict(tp)
		sp, scov := scanPredict(rules, tp)
		if icov != scov || !bitsEqual(ip, sp) {
			detail = fmt.Sprintf("row %d: index (%g,%v) vs scan (%g,%v)", i, ip, icov, sp, scov)
			break
		}
	}
	rn.check("predict/index-vs-scan/"+label, detail)

	// PredictBatch (columnar) vs per-tuple Predict (row path), bitwise.
	preds, covered := rules.PredictBatch(rel)
	detail = ""
	for i, tp := range rel.Tuples {
		rp, rcov := rules.Predict(tp)
		if covered[i] != rcov || !bitsEqual(preds[i], rp) {
			detail = fmt.Sprintf("row %d: batch (%g,%v) vs row (%g,%v)", i, preds[i], covered[i], rp, rcov)
			break
		}
	}
	rn.check("predict/batch-vs-row/"+label, detail)

	// Violations: columnar vs tuple-at-a-time reference, exact.
	rn.check("violations/columns-vs-rows/"+label,
		diffViolations(core.Violations(rel, rules), core.ViolationsRows(rel, rules)))

	// Explain: columnar view vs per-tuple reference.
	rn.check("explain/view-vs-row/"+label, diffExplain(rel, rules))
}

func diffViolations(a, b []core.Violation) string {
	if len(a) != len(b) {
		return fmt.Sprintf("violation count %d vs %d", len(a), len(b))
	}
	for i := range a {
		va, vb := a[i], b[i]
		if va.TupleIndex != vb.TupleIndex || va.RuleIndex != vb.RuleIndex ||
			!bitsEqual(va.Observed, vb.Observed) || !bitsEqual(va.Predicted, vb.Predicted) ||
			!bitsEqual(va.Excess, vb.Excess) {
			return fmt.Sprintf("violation %d: %+v vs %+v", i, va, vb)
		}
	}
	return ""
}

func diffExplain(rel *dataset.Relation, rules *core.RuleSet) string {
	view := core.ExplainView(dataset.NewColumnSet(rel).View(), rules)
	for i, tp := range rel.Tuples {
		row := core.Explain(rules, tp)
		col := view[i]
		if col.Covered != row.Covered || !bitsEqual(col.Prediction, row.Prediction) {
			return fmt.Sprintf("row %d: view (%g,%v) vs row (%g,%v)",
				i, col.Prediction, col.Covered, row.Prediction, row.Covered)
		}
		if len(col.Matches) != len(row.Matches) {
			return fmt.Sprintf("row %d: %d vs %d matches", i, len(col.Matches), len(row.Matches))
		}
		for j := range col.Matches {
			mc, mr := col.Matches[j], row.Matches[j]
			if mc.RuleIndex != mr.RuleIndex || mc.ConjIndex != mr.ConjIndex ||
				mc.Satisfied != mr.Satisfied ||
				!bitsEqual(mc.Prediction, mr.Prediction) || !bitsEqual(mc.Deviation, mr.Deviation) ||
				!mc.Builtin.Equal(mr.Builtin) {
				return fmt.Sprintf("row %d match %d: %+v vs %+v", i, j, mc, mr)
			}
		}
	}
	return ""
}

// codecOracle round-trips the rule set through the v2 codec and checks the
// decoded set is structurally identical and classifies every tuple bitwise
// the same — this is what catches a field dropped for translated or fused
// rules (built-in Δ/δ predicates, per-conjunction builtins).
func (rn *runner) codecOracle(t Target, rules *core.RuleSet, label string) {
	var buf bytes.Buffer
	if err := core.WriteRuleSet(&buf, rules); err != nil {
		rn.fail("codec/roundtrip/"+label, fmt.Sprintf("encode: %v", err))
		return
	}
	decoded, err := core.ReadRuleSet(&buf)
	if err != nil {
		rn.fail("codec/roundtrip/"+label, fmt.Sprintf("decode: %v", err))
		return
	}
	rn.check("codec/roundtrip/"+label, diffRuleSets(rules, decoded))

	detail := ""
	for i, tp := range t.Rel.Tuples {
		op, ocov := rules.Predict(tp)
		dp, dcov := decoded.Predict(tp)
		if ocov != dcov || !bitsEqual(op, dp) {
			detail = fmt.Sprintf("row %d: original (%g,%v) vs decoded (%g,%v)", i, op, ocov, dp, dcov)
			break
		}
	}
	rn.check("codec/predict/"+label, detail)
}

// xScale returns 1 + Σ over the X attributes of the largest |x| in rel —
// the scale factor of the tolerance-induced drift bounds. Anchored
// translation evaluates δ at a conjunction-interval midpoint that can sit
// anywhere in the attribute's domain, so the drift bound must use the
// domain scale, not a per-tuple |x|.
func xScale(rel *dataset.Relation, xattrs []int) float64 {
	s := 1.0
	for _, a := range xattrs {
		m := 0.0
		for _, tp := range rel.Tuples {
			if !tp[a].Null {
				if v := math.Abs(tp[a].Num); v > m {
					m = v
				}
			}
		}
		s += m
	}
	return s
}

// driftBound bounds the tolerated prediction drift when models were unified
// under parameter tolerance tol over data of the given x scale: per
// dimension the slopes may differ by tol and the substitution is anchored
// somewhere inside the domain, so predictions drift by at most
// 2·tol·scale plus the engine's own float slack.
func driftBound(tol, scale float64) float64 {
	return 1e-9 + 2*tol*scale
}
