package verify

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"

	"github.com/crrlab/crr/internal/cliutil"
	"github.com/crrlab/crr/internal/cluster"
	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/router"
	"github.com/crrlab/crr/internal/serve"
	"github.com/crrlab/crr/internal/telemetry"
	"github.com/crrlab/crr/pkg/client"
)

// Cluster parity: the stateless router must be a bitwise passthrough. A
// request answered through the router has to produce the exact bytes the
// owning node produces when asked directly, and the decoded predictions have
// to match the in-process classifier bitwise — for both addressing forms
// (X-CRR-Tenant header and /t/{tenant}/ path) and both codecs (JSON and
// binary columnar through the public SDK).

// clusterTenant is the non-default tenant the cluster oracles install on
// every node alongside the default artifact.
const clusterTenant = "verify-b"

// clusterOracles stands up a two-node tenant-aware fleet behind a router and
// checks router-path /v1/predict and /v1/check against direct-node bytes and
// in-process results for both tenants.
func (rn *runner) clusterOracles(t Target, rules *core.RuleSet, label string) error {
	reg := telemetry.New()
	specs := make([]cluster.NodeSpec, 2)
	for i := range specs {
		srv, err := serve.NewFromRuleSet(serve.Config{}, rules, "verify")
		if err != nil {
			return fmt.Errorf("cluster %s node %d: %w", label, i, err)
		}
		if _, err := srv.InstallTenant(clusterTenant, rules, "verify"); err != nil {
			return fmt.Errorf("cluster %s node %d tenant: %w", label, i, err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		specs[i] = cluster.NodeSpec{Name: fmt.Sprintf("n%d", i+1), URL: ts.URL}
	}
	tracker, err := cluster.NewTracker(specs, cluster.TrackerConfig{Registry: reg})
	if err != nil {
		return fmt.Errorf("cluster %s tracker: %w", label, err)
	}
	rtr, err := router.New(router.Config{Tracker: tracker, Registry: reg})
	if err != nil {
		return fmt.Errorf("cluster %s router: %w", label, err)
	}
	front := httptest.NewServer(rtr.Handler())
	defer front.Close()

	rel := t.Rel
	wire := make([]map[string]any, len(rel.Tuples))
	for i, tp := range rel.Tuples {
		wire[i] = wireTuple(rel.Schema, tp)
	}
	reqBody, err := json.Marshal(map[string]any{"tuples": wire})
	if err != nil {
		return err
	}

	for _, tenant := range []string{serve.DefaultTenant, clusterTenant} {
		cands := tracker.Route(tenant)
		if len(cands) == 0 {
			return fmt.Errorf("cluster %s: no candidates for tenant %s", label, tenant)
		}
		primary := cands[0].URL

		// Predict: router bytes == direct-node bytes == /t/ path-form bytes.
		direct, err := postTenantRaw(primary+"/v1/predict", tenant, reqBody)
		if err != nil {
			return fmt.Errorf("cluster %s direct predict: %w", label, err)
		}
		routed, err := postTenantRaw(front.URL+"/v1/predict", tenant, reqBody)
		if err != nil {
			return fmt.Errorf("cluster %s routed predict: %w", label, err)
		}
		pathed, err := postTenantRaw(front.URL+"/t/"+tenant+"/v1/predict", "", reqBody)
		if err != nil {
			return fmt.Errorf("cluster %s path-form predict: %w", label, err)
		}
		detail := ""
		if !bytes.Equal(routed, direct) {
			detail = fmt.Sprintf("tenant %s: router body (%d bytes) differs from direct node (%d bytes)",
				tenant, len(routed), len(direct))
		} else if !bytes.Equal(pathed, routed) {
			detail = fmt.Sprintf("tenant %s: /t/ path form (%d bytes) differs from header form (%d bytes)",
				tenant, len(pathed), len(routed))
		}
		rn.check("cluster/predict-passthrough/"+label, detail)

		// Router-path predictions vs the in-process classifier, bitwise.
		var pr predictResponse
		if err := json.Unmarshal(routed, &pr); err != nil {
			return fmt.Errorf("cluster %s decode predict: %w", label, err)
		}
		detail = ""
		if pr.Count != len(wire) || len(pr.Predictions) != len(wire) {
			detail = fmt.Sprintf("tenant %s: routed %d predictions for %d tuples",
				tenant, len(pr.Predictions), len(wire))
		} else {
			for i, tp := range rel.Tuples {
				want, wcov := rules.Predict(tp)
				got := pr.Predictions[i]
				if got.Covered != wcov || !bitsEqual(got.Value, want) {
					detail = fmt.Sprintf("tenant %s row %d: routed (%g,%v) vs in-process (%g,%v)",
						tenant, i, got.Value, got.Covered, want, wcov)
					break
				}
			}
		}
		rn.check("cluster/predict-router/"+label, detail)

		// Check: same passthrough + semantic comparison.
		directC, err := postTenantRaw(primary+"/v1/check", tenant, reqBody)
		if err != nil {
			return fmt.Errorf("cluster %s direct check: %w", label, err)
		}
		routedC, err := postTenantRaw(front.URL+"/v1/check", tenant, reqBody)
		if err != nil {
			return fmt.Errorf("cluster %s routed check: %w", label, err)
		}
		detail = ""
		if !bytes.Equal(routedC, directC) {
			detail = fmt.Sprintf("tenant %s: router check body (%d bytes) differs from direct node (%d bytes)",
				tenant, len(routedC), len(directC))
		}
		rn.check("cluster/check-passthrough/"+label, detail)

		var cr checkResponse
		if err := json.Unmarshal(routedC, &cr); err != nil {
			return fmt.Errorf("cluster %s decode check: %w", label, err)
		}
		rn.check("cluster/check-router/"+label, diffServedViolations(rel, rules, &cr))

		// Binary columnar through the SDK, addressed at the router.
		if err := rn.clusterBinaryOracle(front.URL, t, rules, tenant, label); err != nil {
			return err
		}
	}
	return nil
}

// clusterBinaryOracle drives the router with the SDK in binary columnar
// format and holds the answers to the in-process classifier bitwise.
func (rn *runner) clusterBinaryOracle(url string, t Target, rules *core.RuleSet, tenant, label string) error {
	rel := t.Rel
	batch, err := cliutil.ClientBatch(rel)
	if err != nil {
		return fmt.Errorf("cluster %s binary batch: %w", label, err)
	}
	c := client.New(url, client.WithFormat(client.FormatBinary), client.WithTenant(tenant))
	res, err := c.Predict(context.Background(), batch)
	if err != nil {
		return fmt.Errorf("cluster %s binary predict: %w", label, err)
	}
	detail := ""
	if len(res.Values) != len(rel.Tuples) {
		detail = fmt.Sprintf("tenant %s: routed %d binary predictions for %d tuples",
			tenant, len(res.Values), len(rel.Tuples))
	} else {
		for i, tp := range rel.Tuples {
			want, wcov := rules.Predict(tp)
			if res.Covered[i] != wcov || !bitsEqual(res.Values[i], want) {
				detail = fmt.Sprintf("tenant %s row %d: routed binary (%g,%v) vs in-process (%g,%v)",
					tenant, i, res.Values[i], res.Covered[i], want, wcov)
				break
			}
		}
	}
	rn.check("cluster/predict-binary/"+label, detail)

	batch, err = cliutil.ClientBatch(rel)
	if err != nil {
		return fmt.Errorf("cluster %s binary batch: %w", label, err)
	}
	rep, err := c.Check(context.Background(), batch)
	if err != nil {
		return fmt.Errorf("cluster %s binary check: %w", label, err)
	}
	detail = ""
	want := core.Violations(rel, rules)
	if rep.Checked != len(rel.Tuples) || len(rep.Violations) != len(want) {
		detail = fmt.Sprintf("tenant %s: routed binary check %d/%d vs in-process %d/%d",
			tenant, rep.Checked, len(rep.Violations), len(rel.Tuples), len(want))
	} else {
		for i, got := range rep.Violations {
			w := want[i]
			if got.Tuple != w.TupleIndex || got.Rule != w.RuleIndex ||
				!bitsEqual(got.Observed, w.Observed) || !bitsEqual(got.Predicted, w.Predicted) ||
				!bitsEqual(got.Excess, w.Excess) {
				detail = fmt.Sprintf("tenant %s violation %d: routed binary %+v vs in-process %+v",
					tenant, i, got, w)
				break
			}
		}
	}
	rn.check("cluster/check-binary/"+label, detail)
	return nil
}

// postTenantRaw posts a JSON body, optionally stamped with the tenant
// header, and returns the raw response bytes for byte-level comparison.
func postTenantRaw(url, tenant string, body []byte) ([]byte, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(serve.TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, raw)
	}
	return raw, nil
}
