package verify

import (
	"fmt"
	"math"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/stream"
)

// streamOracle verifies windowed stream maintenance differentially: the
// target's rows are replayed through a stream.Maintainer (rank-1 Gram
// updates/downdates, drift checks, incremental re-validation), the maintained
// set is flushed and snapshotted, and every published rule is compared
// against an independent from-scratch reconstruction over the final window —
// rows selected by a tuple-at-a-time first-match scan (not the maintainer's
// columnar filters), statistics accumulated fresh (not carried through
// thousands of update/downdate cycles), fit by the same solver. The oracle
// asserts:
//
//   - routing parity: the maintainer's published ρ equals the max residual
//     over the independently selected covered rows (the Covering-index path,
//     the vectorized-filter path and the row scan all agreed on the
//     selection);
//   - numerical drift: the carried-statistics fit predicts within
//     1e-9·scale(y) of the from-scratch fit on every covered row — the
//     documented downdate drift bound;
//   - fallback parity: the published fallback is bitwise the window's target
//     mean.
func (rn *runner) streamOracle(t Target, rules *core.RuleSet) error {
	if rules.NumRules() == 0 {
		return nil
	}
	window := t.Rel.Len() / 2
	if window < 64 {
		window = 64
	}
	if window > 1024 {
		window = 1024
	}
	minRefit := 4 * (len(rules.XAttrs) + 1)
	if minRefit < 16 {
		minRefit = 16
	}
	m, err := stream.New(rules, stream.Config{
		Window:   window,
		RhoM:     t.RhoM,
		Alpha:    1e-6, // stationary replay: drift rejections would be noise
		MinRefit: minRefit,
	})
	if err != nil {
		return err
	}
	for _, tp := range t.Rel.Tuples {
		if err := m.Append(tp); err != nil {
			return err
		}
	}
	if got := m.Stats().RowsIngested; got != uint64(t.Rel.Len()) {
		rn.fail("stream/ingest", fmt.Sprintf("ingested %d of %d rows", got, t.Rel.Len()))
	} else {
		rn.pass()
	}
	m.Refit()
	snap := m.Snapshot()
	winRel := m.Window().Relation()

	trainer := regress.LinearTrainer{}
	checked := 0
	for ri := range snap.Rules {
		rule := &snap.Rules[ri]
		xs, ys := coveredPairs(winRel, rule)
		if len(ys) < minRefit {
			continue // below the refit floor: the maintainer left it untouched
		}
		scale := 1.0
		fresh := regress.NewGram(len(rule.XAttrs))
		for i, x := range xs {
			fresh.Add(x, ys[i])
			if a := math.Abs(ys[i]); a > scale {
				scale = a
			}
		}
		freshFit, err := trainer.TrainGram(fresh)
		if err != nil {
			continue // unsolvable from scratch ⇒ the maintainer kept its model
		}
		var maxDrift, rho float64
		for i, x := range xs {
			if d := math.Abs(rule.Model.Predict(x) - freshFit.Predict(x)); d > maxDrift {
				maxDrift = d
			}
			if d := math.Abs(ys[i] - rule.Model.Predict(x)); d > rho {
				rho = d
			}
		}
		if maxDrift > 1e-9*scale {
			rn.fail("stream/windowed-refit", fmt.Sprintf(
				"rule %d: maintained fit drifted %g from the from-scratch fit over %d window rows (bound %g)",
				ri, maxDrift, len(ys), 1e-9*scale))
		} else {
			rn.pass()
		}
		if d := math.Abs(rho - rule.Rho); d > 1e-9*scale {
			rn.fail("stream/rho-revalidation", fmt.Sprintf(
				"rule %d: published ρ %g vs independently recomputed %g over %d rows",
				ri, rule.Rho, rho, len(ys)))
		} else {
			rn.pass()
		}
		checked++
	}
	if checked == 0 {
		// Nothing reached the refit floor — on a many-rules/few-rows target
		// (e.g. BirdMap at smoke scale) every rule legitimately covers a
		// handful of window rows and the maintainer correctly leaves them
		// all untouched. Not a divergence, but worth a progress note.
		rn.logf("[%s] stream oracle: no rule reached the %d-row refit floor in a %d-row window",
			t.Name, minRefit, window)
	}

	var sum float64
	n := 0
	for _, tp := range winRel.Tuples {
		if !tp[snap.YAttr].Null {
			sum += tp[snap.YAttr].Num
			n++
		}
	}
	if n > 0 {
		if !bitsEqual(snap.Fallback, sum/float64(n)) {
			rn.fail("stream/fallback", fmt.Sprintf(
				"published fallback %v vs window mean %v", snap.Fallback, sum/float64(n)))
		} else {
			rn.pass()
		}
	}
	return nil
}

// coveredPairs selects rule's fit-usable covered rows of rel by a plain
// tuple-at-a-time first-match scan — deliberately NOT the maintainer's
// Covering index or the vectorized filters, so selection bugs in either show
// up as a divergence. Pairs come back shifted exactly as training saw them.
func coveredPairs(rel *dataset.Relation, rule *core.CRR) (xs [][]float64, ys []float64) {
rows:
	for _, tp := range rel.Tuples {
		conj, ok := rule.Cond.MatchConjunction(tp)
		if !ok || tp[rule.YAttr].Null {
			continue
		}
		x := make([]float64, len(rule.XAttrs))
		for i, attr := range rule.XAttrs {
			if tp[attr].Null {
				continue rows
			}
			x[i] = tp[attr].Num + conj.Builtin.Shift(attr)
		}
		xs = append(xs, x)
		ys = append(ys, tp[rule.YAttr].Num-conj.Builtin.YShift)
	}
	return xs, ys
}
