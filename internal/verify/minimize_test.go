package verify

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
)

// TestMinimizeRowsShrinksToMarker: a synthetic metamorphic check that fails
// exactly when a marker tuple is present must be minimized down to (nearly)
// that single row, and the reproducer must cite its index.
func TestMinimizeRowsShrinksToMarker(t *testing.T) {
	schema := dataset.MustSchema(dataset.Attribute{Name: "X", Kind: dataset.Numeric})
	rel := &dataset.Relation{Schema: schema}
	const marker = 23
	for i := 0; i < 40; i++ {
		v := float64(i)
		if i == marker {
			v = 777
		}
		rel.Tuples = append(rel.Tuples, dataset.Tuple{dataset.Num(v)})
	}
	target := Target{Name: "synthetic", Rel: rel, XAttrs: []int{0}, YAttr: 0}

	check := func(ctx context.Context, rn *runner, tt Target) (string, error) {
		for _, tp := range tt.Rel.Tuples {
			if tp[0].Num == 777 {
				return "marker present", nil
			}
		}
		return "", nil
	}

	rn := &runner{opts: Options{Seed: 7}}
	repro := rn.minimizeRows(context.Background(), target, check)
	if repro == "" {
		t.Fatal("minimizer reported the failure as non-reproducible")
	}
	if !strings.Contains(repro, fmt.Sprintf("%d", marker)) {
		t.Errorf("reproducer does not cite the marker row %d: %q", marker, repro)
	}
	// The ddmin loop should isolate a small subset, not return all 40 rows.
	if strings.Contains(repro, "40 of 40 rows") {
		t.Errorf("minimizer did not shrink the failing set: %q", repro)
	}
}

// TestMinimizeRowsNonReproducible: a check that passes on the full relation
// yields an empty reproducer (the caller then reports the divergence bare).
func TestMinimizeRowsNonReproducible(t *testing.T) {
	schema := dataset.MustSchema(dataset.Attribute{Name: "X", Kind: dataset.Numeric})
	rel := &dataset.Relation{Schema: schema, Tuples: []dataset.Tuple{{dataset.Num(1)}, {dataset.Num(2)}}}
	target := Target{Name: "synthetic", Rel: rel, XAttrs: []int{0}, YAttr: 0}
	rn := &runner{opts: Options{Seed: 7}}
	pass := func(ctx context.Context, rn *runner, tt Target) (string, error) { return "", nil }
	if got := rn.minimizeRows(context.Background(), target, pass); got != "" {
		t.Fatalf("expected empty reproducer, got %q", got)
	}
}
