package predicate

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
)

// filterTestRelation builds a mixed-kind relation with nulls sprinkled into
// every column, the adversarial surface for Filter/Sat parity.
func filterTestRelation(n int, seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "A", Kind: dataset.Numeric},
		dataset.Attribute{Name: "B", Kind: dataset.Numeric},
		dataset.Attribute{Name: "C", Kind: dataset.Categorical},
	)
	rel := dataset.NewRelation(schema)
	cats := []string{"red", "green", "blue", ""}
	for i := 0; i < n; i++ {
		t := dataset.Tuple{
			dataset.Num(rng.Float64() * 100),
			dataset.Num(float64(rng.Intn(10))),
			dataset.Str(cats[rng.Intn(len(cats))]),
		}
		for a := 0; a < 3; a++ {
			if rng.Float64() < 0.1 {
				t[a] = dataset.Null()
			}
		}
		rel.MustAppend(t)
	}
	return rel
}

// randPredicate draws a predicate over the test schema, mixing constants
// that occur in the data with ones that do not.
func randPredicate(rng *rand.Rand) Predicate {
	if rng.Intn(3) == 2 {
		cats := []string{"red", "green", "blue", "", "absent"}
		return StrPred(2, cats[rng.Intn(len(cats))])
	}
	attr := rng.Intn(2)
	op := Op(rng.Intn(5))
	c := rng.Float64() * 110
	if attr == 1 {
		c = float64(rng.Intn(12)) // integral: makes Eq hits likely
	}
	return NumPred(attr, op, c)
}

// satRows is the reference selection: the rows of sel whose tuples satisfy
// the given Sat test.
func satRows(rel *dataset.Relation, sel []int, sat func(dataset.Tuple) bool) []int {
	var out []int
	for _, r := range sel {
		if sat(rel.Tuples[r]) {
			out = append(out, r)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFilterMatchesSat is the Filter/Sat parity property test: across many
// random predicates, conjunctions and DNFs, the vectorized filters must
// select exactly the rows whose tuples satisfy Sat, in order.
func TestFilterMatchesSat(t *testing.T) {
	rel := filterTestRelation(500, 11)
	cs := dataset.NewColumnSet(rel)
	full := cs.View().Sel
	rng := rand.New(rand.NewSource(7))

	for trial := 0; trial < 300; trial++ {
		p := randPredicate(rng)
		got := p.Filter(cs, full, nil)
		want := satRows(rel, full, p.Sat)
		if !equalInts(got, want) {
			t.Fatalf("trial %d: predicate %v: filter %v, sat %v", trial, p, got, want)
		}

		conj := NewConjunction()
		for i, k := 0, rng.Intn(4); i < k; i++ {
			conj = conj.And(randPredicate(rng))
		}
		got = conj.Filter(cs, full, nil)
		want = satRows(rel, full, conj.Sat)
		if !equalInts(got, want) {
			t.Fatalf("trial %d: conjunction %v: filter %v, sat %v", trial, conj, got, want)
		}

		var conjs []Conjunction
		for i, k := 0, rng.Intn(4); i < k; i++ {
			c := NewConjunction()
			for j, m := 0, rng.Intn(3); j < m; j++ {
				c = c.And(randPredicate(rng))
			}
			conjs = append(conjs, c)
		}
		d := NewDNF(conjs...)
		got = d.Filter(cs, full, nil)
		want = satRows(rel, full, d.Sat)
		if !equalInts(got, want) {
			t.Fatalf("trial %d: dnf %v: filter %v, sat %v", trial, d, got, want)
		}
	}
}

// TestFilterNarrowedSelection checks parity on a partial selection and that
// in-place narrowing (dst aliasing sel) is safe for single predicates.
func TestFilterNarrowedSelection(t *testing.T) {
	rel := filterTestRelation(300, 3)
	cs := dataset.NewColumnSet(rel)
	rng := rand.New(rand.NewSource(5))
	var sel []int
	for i := 0; i < rel.Len(); i++ {
		if rng.Intn(2) == 0 {
			sel = append(sel, i)
		}
	}
	for trial := 0; trial < 100; trial++ {
		p := randPredicate(rng)
		want := satRows(rel, sel, p.Sat)
		got := p.Filter(cs, sel, nil)
		if !equalInts(got, want) {
			t.Fatalf("trial %d: %v on subset: filter %v, sat %v", trial, p, got, want)
		}
		// In-place: narrow a scratch copy into itself.
		scratch := append([]int(nil), sel...)
		inplace := p.Filter(cs, scratch, scratch)
		if !equalInts(inplace, want) {
			t.Fatalf("trial %d: %v in-place: filter %v, sat %v", trial, p, inplace, want)
		}
	}
}

// TestConjunctionFilterView checks the view-level wrapper.
func TestConjunctionFilterView(t *testing.T) {
	rel := filterTestRelation(200, 9)
	v := dataset.NewColumnSet(rel).View()
	conj := NewConjunction(NumPred(0, Gt, 25), NumPred(0, Le, 75))
	nv := conj.FilterView(v)
	want := satRows(rel, v.Sel, conj.Sat)
	if !equalInts(nv.Sel, want) {
		t.Fatalf("FilterView: %v, want %v", nv.Sel, want)
	}
	if nv.Cols != v.Cols {
		t.Fatal("FilterView must share the column set")
	}
}

// FuzzPredicateFilterParity fuzzes one numeric predicate against a small
// generated column: Filter must agree with Sat for any op/constant, with and
// without nulls.
func FuzzPredicateFilterParity(f *testing.F) {
	f.Add(int64(1), uint8(1), 50.0)
	f.Add(int64(2), uint8(0), 0.0)
	f.Add(int64(3), uint8(4), -7.5)
	f.Fuzz(func(t *testing.T, seed int64, opRaw uint8, c float64) {
		if c != c { // NaN constants are not representable predicates
			t.Skip()
		}
		op := Op(int(opRaw) % 5)
		rel := filterTestRelation(64, seed)
		cs := dataset.NewColumnSet(rel)
		p := NumPred(0, op, c)
		got := p.Filter(cs, cs.View().Sel, nil)
		want := satRows(rel, cs.View().Sel, p.Sat)
		if !equalInts(got, want) {
			t.Fatalf("predicate %v: filter %v, sat %v", p, got, want)
		}
	})
}

// benchConj is the benchmark workload: a two-sided interval plus a
// categorical equality, the shape discovery's refinement produces.
func benchConj() Conjunction {
	return NewConjunction(NumPred(0, Gt, 25), NumPred(0, Le, 75), StrPred(2, "red"))
}

// BenchmarkFilterColumnar measures the vectorized conjunction filter over a
// full selection — the columnar hot path of discovery, violations and batch
// serving.
func BenchmarkFilterColumnar(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			rel := filterTestRelation(n, 1)
			cs := dataset.NewColumnSet(rel)
			sel := cs.View().Sel
			conj := benchConj()
			dst := make([]int, 0, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = conj.Filter(cs, sel, dst)
			}
		})
	}
}

// BenchmarkFilterRowwise is the tuple-at-a-time reference for the same
// workload, for before/after comparison in BENCH_columnar.json.
func BenchmarkFilterRowwise(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			rel := filterTestRelation(n, 1)
			conj := benchConj()
			out := make([]int, 0, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = out[:0]
				for r, t := range rel.Tuples {
					if conj.Sat(t) {
						out = append(out, r)
					}
				}
			}
		})
	}
}
