package predicate

import (
	"math"
	"strings"

	"github.com/crrlab/crr/internal/dataset"
)

// Conjunction is ⋀ p over a predicate set, plus the conjunction's built-in
// translation predicates (paper §III-A2, §III-A3). The empty conjunction is
// the most general condition and is satisfied by every tuple.
type Conjunction struct {
	Preds   []Predicate
	Builtin Builtin
}

// NewConjunction builds a conjunction over preds with the zero builtin.
func NewConjunction(preds ...Predicate) Conjunction {
	return Conjunction{Preds: append([]Predicate(nil), preds...)}
}

// Sat reports whether tuple t satisfies every predicate (builtins are always
// satisfied, per §III-A1).
func (c Conjunction) Sat(t dataset.Tuple) bool {
	for _, p := range c.Preds {
		if !p.Sat(t) {
			return false
		}
	}
	return true
}

// And returns a new conjunction with p appended (C ∧ p).
func (c Conjunction) And(p Predicate) Conjunction {
	out := c.Clone()
	out.Preds = append(out.Preds, p)
	return out
}

// Clone deep-copies the conjunction.
func (c Conjunction) Clone() Conjunction {
	return Conjunction{
		Preds:   append([]Predicate(nil), c.Preds...),
		Builtin: c.Builtin.Clone(),
	}
}

// interval is the per-attribute solution set of a conjunction's numeric
// predicates: lo < v (or ≤ when loClosed) and v < hi (or ≤ when hiClosed).
type interval struct {
	lo, hi             float64
	loClosed, hiClosed bool
}

func fullInterval() interval {
	return interval{lo: math.Inf(-1), hi: math.Inf(1), loClosed: true, hiClosed: true}
}

// intersect tightens the interval with predicate p; it reports false when the
// result is empty.
func (iv *interval) intersect(p Predicate) bool {
	switch p.Op {
	case Eq:
		if p.Num > iv.lo || (p.Num == iv.lo && iv.loClosed) {
			iv.lo, iv.loClosed = p.Num, true
		} else if p.Num != iv.lo || !iv.loClosed {
			return false
		}
		if p.Num < iv.hi || (p.Num == iv.hi && iv.hiClosed) {
			iv.hi, iv.hiClosed = p.Num, true
		} else if p.Num != iv.hi || !iv.hiClosed {
			return false
		}
	case Gt:
		if p.Num > iv.lo || (p.Num == iv.lo && iv.loClosed) {
			iv.lo, iv.loClosed = p.Num, false
		}
	case Ge:
		if p.Num > iv.lo {
			iv.lo, iv.loClosed = p.Num, true
		}
	case Lt:
		if p.Num < iv.hi || (p.Num == iv.hi && iv.hiClosed) {
			iv.hi, iv.hiClosed = p.Num, false
		}
	case Le:
		if p.Num < iv.hi {
			iv.hi, iv.hiClosed = p.Num, true
		}
	}
	return !iv.empty()
}

func (iv interval) empty() bool {
	if iv.lo > iv.hi {
		return true
	}
	if iv.lo == iv.hi && (!iv.loClosed || !iv.hiClosed) {
		return true
	}
	return false
}

// contains reports whether every point of iv satisfies predicate q.
func (iv interval) contains(q Predicate) bool {
	switch q.Op {
	case Eq:
		return iv.lo == q.Num && iv.hi == q.Num && iv.loClosed && iv.hiClosed
	case Gt:
		return iv.lo > q.Num || (iv.lo == q.Num && !iv.loClosed)
	case Ge:
		return iv.lo >= q.Num
	case Lt:
		return iv.hi < q.Num || (iv.hi == q.Num && !iv.hiClosed)
	case Le:
		return iv.hi <= q.Num
	default:
		return false
	}
}

// summary is the normalized view of a conjunction used by implication and
// satisfiability checks.
type summary struct {
	numeric     map[int]interval
	categorical map[int]string // attr → required value
	contradict  bool
	// nan marks a contradiction caused by a NaN predicate constant. Such a
	// predicate is satisfied by no tuple (every comparison with NaN is
	// false), so the conjunction is unsatisfiable — but entails refuses to
	// derive implications from it: an implication "proved" from a garbage
	// constant must never count as sound (see entails).
	nan bool
}

func (c Conjunction) summarize() summary {
	s := summary{numeric: make(map[int]interval), categorical: make(map[int]string)}
	for _, p := range c.Preds {
		if p.Categorical {
			if prev, ok := s.categorical[p.Attr]; ok && prev != p.Str {
				s.contradict = true
				return s
			}
			s.categorical[p.Attr] = p.Str
			continue
		}
		if math.IsNaN(p.Num) {
			// A NaN constant admits no satisfying value regardless of the
			// operator. The naive interval intersection would silently
			// ignore it on Gt/Ge/Lt/Le (NaN comparisons are all false,
			// leaving the interval untouched), so Normalize would "simplify"
			// an unsatisfiable conjunction into a strictly more general one.
			s.contradict = true
			s.nan = true
			return s
		}
		iv, ok := s.numeric[p.Attr]
		if !ok {
			iv = fullInterval()
		}
		if !iv.intersect(p) {
			s.contradict = true
			return s
		}
		s.numeric[p.Attr] = iv
	}
	return s
}

// Unsatisfiable reports whether no tuple can satisfy the conjunction (e.g.
// A > 5 ∧ A < 3). Satisfiability here is over the unrestricted attribute
// domains, which is sound for pruning the search queue.
func (c Conjunction) Unsatisfiable() bool {
	return c.summarize().contradict
}

// Normalize returns an equivalent conjunction with the minimal predicate
// set: one categorical equality per attribute and at most two interval
// bounds per numeric attribute (an equality when the interval is a point).
// Discovery accumulates a predicate per refinement step, so normalizing
// keeps emitted rules readable. Builtins are preserved. Unsatisfiable
// conjunctions are returned unchanged.
func (c Conjunction) Normalize() Conjunction {
	s := c.summarize()
	if s.contradict {
		return c
	}
	out := Conjunction{Builtin: c.Builtin.Clone()}
	// Keep first-appearance attribute order for stable output.
	seen := make(map[int]bool)
	for _, p := range c.Preds {
		if seen[p.Attr] {
			continue
		}
		seen[p.Attr] = true
		if p.Categorical {
			out.Preds = append(out.Preds, StrPred(p.Attr, s.categorical[p.Attr]))
			continue
		}
		iv := s.numeric[p.Attr]
		switch {
		case iv.lo == iv.hi:
			out.Preds = append(out.Preds, NumPred(p.Attr, Eq, iv.lo))
		default:
			if !math.IsInf(iv.lo, -1) {
				op := Gt
				if iv.loClosed {
					op = Ge
				}
				out.Preds = append(out.Preds, NumPred(p.Attr, op, iv.lo))
			}
			if !math.IsInf(iv.hi, 1) {
				op := Lt
				if iv.hiClosed {
					op = Le
				}
				out.Preds = append(out.Preds, NumPred(p.Attr, op, iv.hi))
			}
		}
	}
	return out
}

// NumericBounds returns the interval [lo, hi] the conjunction's numeric
// predicates allow for attribute attr (±Inf when unbounded). ok is false
// when the conjunction has no numeric predicate on attr or is contradictory.
func (c Conjunction) NumericBounds(attr int) (lo, hi float64, ok bool) {
	s := c.summarize()
	if s.contradict {
		return 0, 0, false
	}
	iv, found := s.numeric[attr]
	if !found {
		return 0, 0, false
	}
	return iv.lo, iv.hi, true
}

// Implies reports C ⊢ D: every tuple satisfying c satisfies d.
// The check is the standard sound interval entailment: each predicate of d
// must be entailed by c's per-attribute solution set. An unsatisfiable c
// implies everything.
func (c Conjunction) Implies(d Conjunction) bool {
	return c.summarize().entails(d)
}

// entails reports whether the summarized solution set satisfies every
// predicate of d.
func (cs summary) entails(d Conjunction) bool {
	if cs.nan {
		// Vacuous truth is logically available (a NaN-constant conjunction
		// covers nothing), but claiming it would let corrupted conditions
		// imply anything; stay conservative and refuse.
		return false
	}
	if cs.contradict {
		return true
	}
	for _, q := range d.Preds {
		if q.Categorical {
			if v, ok := cs.categorical[q.Attr]; !ok || q.Op != Eq || v != q.Str {
				return false
			}
			continue
		}
		iv, ok := cs.numeric[q.Attr]
		if !ok {
			return false
		}
		if !iv.contains(q) {
			return false
		}
	}
	return true
}

// Equivalent reports mutual implication of the predicate parts.
func (c Conjunction) Equivalent(d Conjunction) bool {
	return c.Implies(d) && d.Implies(c)
}

// String renders the conjunction; the empty conjunction renders as "⊤".
func (c Conjunction) String() string {
	var parts []string
	for _, p := range c.Preds {
		parts = append(parts, p.String())
	}
	if bs := c.Builtin.String(); bs != "" {
		parts = append(parts, bs)
	}
	if len(parts) == 0 {
		return "⊤"
	}
	return strings.Join(parts, " ∧ ")
}

// Format renders the conjunction with attribute names from schema.
func (c Conjunction) Format(schema *dataset.Schema) string {
	var parts []string
	for _, p := range c.Preds {
		parts = append(parts, p.Format(schema))
	}
	if bs := c.Builtin.String(); bs != "" {
		parts = append(parts, bs)
	}
	if len(parts) == 0 {
		return "⊤"
	}
	return strings.Join(parts, " ∧ ")
}

// DNF is a disjunction of conjunctions ℂ = C₁ ∨ … ∨ Cₙ (paper §III-A2).
type DNF struct {
	Conjs []Conjunction
}

// NewDNF builds a DNF from conjunctions.
func NewDNF(conjs ...Conjunction) DNF {
	return DNF{Conjs: append([]Conjunction(nil), conjs...)}
}

// Sat reports whether some conjunction is satisfied by t. The empty DNF is
// satisfied by no tuple.
func (d DNF) Sat(t dataset.Tuple) bool {
	for _, c := range d.Conjs {
		if c.Sat(t) {
			return true
		}
	}
	return false
}

// MatchConjunction returns the first conjunction satisfied by t, for reading
// off the built-in predicates to apply; ok is false when none matches.
func (d DNF) MatchConjunction(t dataset.Tuple) (Conjunction, bool) {
	for _, c := range d.Conjs {
		if c.Sat(t) {
			return c, true
		}
	}
	return Conjunction{}, false
}

// Or returns d ∨ e (Fusion on conditions).
func (d DNF) Or(e DNF) DNF {
	out := DNF{Conjs: make([]Conjunction, 0, len(d.Conjs)+len(e.Conjs))}
	out.Conjs = append(out.Conjs, d.Conjs...)
	out.Conjs = append(out.Conjs, e.Conjs...)
	return out
}

// Implies implements Definition 2: ℂ₁ ⊢ ℂ₂ iff for every conjunction
// C₁ ∈ ℂ₁ there exists C₂ ∈ ℂ₂ with C₁ ⊢ C₂.
func (d DNF) Implies(e DNF) bool {
	for _, c1 := range d.Conjs {
		found := false
		for _, c2 := range e.Conjs {
			if c1.Implies(c2) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Clone deep-copies the DNF.
func (d DNF) Clone() DNF {
	out := DNF{Conjs: make([]Conjunction, len(d.Conjs))}
	for i, c := range d.Conjs {
		out.Conjs[i] = c.Clone()
	}
	return out
}

// Simplify drops unsatisfiable conjunctions and conjunctions subsumed by
// another disjunct with identical builtins. The result is logically
// equivalent and never larger. Summaries are computed once per conjunction,
// so the pairwise subsumption pass costs O(k²) cheap checks rather than
// O(k²) re-normalizations.
func (d DNF) Simplify() DNF {
	kept := make([]Conjunction, 0, len(d.Conjs))
	sums := make([]summary, 0, len(d.Conjs))
	for _, c := range d.Conjs {
		s := c.summarize()
		if !s.contradict {
			kept = append(kept, c)
			sums = append(sums, s)
		}
	}
	out := make([]Conjunction, 0, len(kept))
	for i, c := range kept {
		subsumed := false
		for j, other := range kept {
			if i == j || !c.Builtin.Equal(other.Builtin) {
				continue
			}
			// c is dropped when other strictly contains it, or when they are
			// equivalent and other comes first (keep one representative).
			if sums[i].entails(other) && (!sums[j].entails(c) || j < i) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			out = append(out, c)
		}
	}
	return DNF{Conjs: out}
}

// String renders the DNF.
func (d DNF) String() string {
	if len(d.Conjs) == 0 {
		return "⊥"
	}
	parts := make([]string, len(d.Conjs))
	for i, c := range d.Conjs {
		parts[i] = "(" + c.String() + ")"
	}
	return strings.Join(parts, " ∨ ")
}

// Format renders the DNF with attribute names.
func (d DNF) Format(schema *dataset.Schema) string {
	if len(d.Conjs) == 0 {
		return "⊥"
	}
	parts := make([]string, len(d.Conjs))
	for i, c := range d.Conjs {
		parts[i] = "(" + c.Format(schema) + ")"
	}
	return strings.Join(parts, " ∨ ")
}
