package predicate

import (
	"math"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
)

// FuzzImplies fuzzes the implication relation ⊢ (Definition 2) against
// ground truth: whenever p ⊢ q (or c ⊢ d for conjunctions) is claimed,
// every sampled tuple satisfying the left side must satisfy the right side.
// The samples sit on, just beside, and far from the fuzzed constants, and
// the constants themselves range over NaN and ±Inf — the inputs a naive
// interval comparison gets wrong.
func FuzzImplies(f *testing.F) {
	f.Add(uint8(1), 5.0, uint8(3), 3.0, uint8(2), 7.0)
	f.Add(uint8(0), 4.0, uint8(4), 4.0, uint8(0), 4.0)
	f.Add(uint8(1), math.NaN(), uint8(1), 2.0, uint8(2), math.Inf(1))
	f.Add(uint8(3), -1e308, uint8(4), 1e308, uint8(1), 0.0)

	f.Fuzz(func(t *testing.T, op1 uint8, c1 float64, op2 uint8, c2 float64, op3 uint8, c3 float64) {
		p := NumPred(0, Op(op1%5), c1)
		q := NumPred(0, Op(op2%5), c2)
		r := NumPred(0, Op(op3%5), c3)

		samples := sampleValues(c1, c2, c3)
		if p.Implies(q) {
			for _, v := range samples {
				tp := dataset.Tuple{dataset.Num(v)}
				if p.Sat(tp) && !q.Sat(tp) {
					t.Fatalf("%v ⊢ %v claimed, but v=%v satisfies only the left side", p, q, v)
				}
			}
		}

		// Conjunction-level: {p ∧ r} ⊢ {q} and {p} ⊢ {q ∧ r}.
		c := NewConjunction(p, r)
		if c.Implies(NewConjunction(q)) {
			for _, v := range samples {
				tp := dataset.Tuple{dataset.Num(v)}
				if c.Sat(tp) && !q.Sat(tp) {
					t.Fatalf("(%v) ⊢ (%v) claimed, but v=%v is a counterexample", c, q, v)
				}
			}
		}
		d := NewConjunction(q, r)
		if NewConjunction(p).Implies(d) {
			for _, v := range samples {
				tp := dataset.Tuple{dataset.Num(v)}
				if p.Sat(tp) && !d.Sat(tp) {
					t.Fatalf("(%v) ⊢ (%v) claimed, but v=%v is a counterexample", p, d, v)
				}
			}
		}

		// Normalize must never widen: the normalized conjunction cannot
		// cover a sample the original rejects.
		n := c.Normalize()
		for _, v := range samples {
			tp := dataset.Tuple{dataset.Num(v)}
			if n.Sat(tp) && !c.Sat(tp) {
				t.Fatalf("Normalize widened (%v) to (%v): covers v=%v", c, n, v)
			}
		}
	})
}

// sampleValues returns probe points on and around each constant plus fixed
// extremes.
func sampleValues(cs ...float64) []float64 {
	out := []float64{0, 1, -1, 1e308, -1e308}
	for _, c := range cs {
		if math.IsNaN(c) {
			continue
		}
		out = append(out, c, math.Nextafter(c, math.Inf(-1)), math.Nextafter(c, math.Inf(1)))
	}
	return out
}
