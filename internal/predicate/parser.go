package predicate

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/crrlab/crr/internal/dataset"
)

// ParseDNF parses a textual DNF condition against a schema. The grammar
// mirrors the paper's notation in ASCII:
//
//	dnf   := conj ("||" conj)*
//	conj  := term ("&&" term)*
//	term  := ATTR op value            -- a predicate A φ c
//	       | "y" "=" number           -- the y = δ builtin
//	       | "x[" ATTR "]" "=" number -- an x = Δ builtin on one attribute
//	op    := "=" | ">" | ">=" | "<" | "<="
//
// Attribute names resolve through the schema; constants on categorical
// attributes are taken verbatim (optionally quoted with single quotes),
// numeric constants must parse as floats. Example:
//
//	Date>=2006 && BirdID='2.Maria' || Date<100 && y=30
func ParseDNF(input string, schema *dataset.Schema) (DNF, error) {
	var dnf DNF
	for _, conjSrc := range splitTop(input, "||") {
		conj, err := parseConj(conjSrc, schema)
		if err != nil {
			return DNF{}, err
		}
		dnf.Conjs = append(dnf.Conjs, conj)
	}
	if len(dnf.Conjs) == 0 {
		return DNF{}, fmt.Errorf("predicate: empty condition")
	}
	return dnf, nil
}

// ParseConjunction parses a single conjunction (no "||").
func ParseConjunction(input string, schema *dataset.Schema) (Conjunction, error) {
	if strings.Contains(input, "||") {
		return Conjunction{}, fmt.Errorf("predicate: %q contains a disjunction; use ParseDNF", input)
	}
	return parseConj(input, schema)
}

func parseConj(src string, schema *dataset.Schema) (Conjunction, error) {
	conj := NewConjunction()
	terms := splitTop(src, "&&")
	if len(terms) == 1 && strings.TrimSpace(terms[0]) == "" {
		return conj, nil // the empty conjunction ⊤
	}
	for _, term := range terms {
		term = strings.TrimSpace(term)
		if term == "" {
			return Conjunction{}, fmt.Errorf("predicate: empty term in %q", src)
		}
		if err := parseTerm(term, schema, &conj); err != nil {
			return Conjunction{}, err
		}
	}
	return conj, nil
}

func parseTerm(term string, schema *dataset.Schema, conj *Conjunction) error {
	// Builtin y = δ.
	if rest, ok := strings.CutPrefix(term, "y="); ok && !strings.ContainsAny(rest, "<>=") {
		d, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return fmt.Errorf("predicate: builtin %q: %w", term, err)
		}
		conj.Builtin = conj.Builtin.WithYShift(d)
		return nil
	}
	// Builtin x[Attr] = Δ.
	if rest, ok := strings.CutPrefix(term, "x["); ok {
		name, after, found := strings.Cut(rest, "]")
		if !found {
			return fmt.Errorf("predicate: builtin %q: missing ]", term)
		}
		after = strings.TrimSpace(after)
		val, ok := strings.CutPrefix(after, "=")
		if !ok {
			return fmt.Errorf("predicate: builtin %q: want x[Attr]=Δ", term)
		}
		attr, err := schema.Index(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		d, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return fmt.Errorf("predicate: builtin %q: %w", term, err)
		}
		conj.Builtin = conj.Builtin.WithXShift(attr, d)
		return nil
	}
	// Predicate ATTR op value. Two-char operators first.
	var opStr string
	var opPos int
	for _, cand := range []string{">=", "<=", ">", "<", "="} {
		if i := strings.Index(term, cand); i > 0 {
			opStr, opPos = cand, i
			break
		}
	}
	if opStr == "" {
		return fmt.Errorf("predicate: term %q has no operator", term)
	}
	name := strings.TrimSpace(term[:opPos])
	valueStr := strings.TrimSpace(term[opPos+len(opStr):])
	attr, err := schema.Index(name)
	if err != nil {
		return err
	}
	var op Op
	switch opStr {
	case "=":
		op = Eq
	case ">":
		op = Gt
	case ">=":
		op = Ge
	case "<":
		op = Lt
	case "<=":
		op = Le
	}
	if schema.Attr(attr).Kind == dataset.Categorical {
		if op != Eq {
			return fmt.Errorf("predicate: categorical attribute %s supports only =", name)
		}
		conj.Preds = append(conj.Preds, StrPred(attr, strings.Trim(valueStr, "'")))
		return nil
	}
	c, err := strconv.ParseFloat(valueStr, 64)
	if err != nil {
		return fmt.Errorf("predicate: term %q: constant %q: %w", term, valueStr, err)
	}
	conj.Preds = append(conj.Preds, NumPred(attr, op, c))
	return nil
}

// splitTop splits src on sep outside single quotes.
func splitTop(src, sep string) []string {
	var parts []string
	depth := false // inside quotes
	start := 0
	for i := 0; i+len(sep) <= len(src); i++ {
		if src[i] == '\'' {
			depth = !depth
			continue
		}
		if !depth && src[i:i+len(sep)] == sep {
			parts = append(parts, src[start:i])
			start = i + len(sep)
			i += len(sep) - 1
		}
	}
	parts = append(parts, src[start:])
	return parts
}
