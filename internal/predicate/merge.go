package predicate

import (
	"math"
	"sort"
	"strings"
)

// MergeAdjacent returns an equivalent DNF in which disjuncts that differ
// only in their interval on a single numeric attribute — with touching or
// overlapping intervals, identical context predicates and identical builtins
// — are collapsed into one disjunct. Discovery and fusion produce long
// chains of touching windows ([a,b) ∨ [b,c) ∨ …) per shared model; merging
// them shrinks conditions without changing semantics.
//
// Merging regroups disjuncts, which would change MatchConjunction's
// first-match builtin resolution if disjuncts from different groups
// overlapped; MergeAdjacent therefore verifies pairwise disjointness across
// groups first and returns the input unchanged when any cross-group overlap
// (or an oversized input) makes the merge unsafe.
func (d DNF) MergeAdjacent() DNF {
	if len(d.Conjs) > mergeMaxDisjuncts || !crossGroupsDisjoint(d) {
		return d
	}
	type window struct {
		conj               Conjunction
		attr               int
		lo, hi             float64
		loClosed, hiClosed bool
	}
	// Group disjuncts by (context without the varying attribute, builtin).
	groups := make(map[string][]window)
	var passthrough []Conjunction
	var order []string
	for _, c := range d.Conjs {
		attr, ok := soleIntervalAttr(c)
		if !ok {
			passthrough = append(passthrough, c)
			continue
		}
		s := c.summarize()
		iv := s.numeric[attr]
		key := mergeKey(c, attr)
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], window{
			conj: c, attr: attr,
			lo: iv.lo, hi: iv.hi, loClosed: iv.loClosed, hiClosed: iv.hiClosed,
		})
	}

	out := DNF{}
	for _, key := range order {
		ws := groups[key]
		sort.SliceStable(ws, func(i, j int) bool {
			if ws[i].lo != ws[j].lo {
				return ws[i].lo < ws[j].lo
			}
			return ws[i].hi < ws[j].hi
		})
		cur := ws[0]
		for _, w := range ws[1:] {
			if touches(cur.hi, cur.hiClosed, w.lo, w.loClosed) {
				// Extend the current window.
				if w.hi > cur.hi || (w.hi == cur.hi && w.hiClosed) {
					cur.hi, cur.hiClosed = w.hi, w.hiClosed
				}
				continue
			}
			out.Conjs = append(out.Conjs, rebuildWindow(cur.conj, cur.attr, cur.lo, cur.hi, cur.loClosed, cur.hiClosed))
			cur = w
		}
		out.Conjs = append(out.Conjs, rebuildWindow(cur.conj, cur.attr, cur.lo, cur.hi, cur.loClosed, cur.hiClosed))
	}
	out.Conjs = append(out.Conjs, passthrough...)
	return out
}

// mergeMaxDisjuncts bounds the O(k²) disjointness pre-check.
const mergeMaxDisjuncts = 2048

// crossGroupsDisjoint verifies that no two disjuncts from different merge
// groups (different context/builtin, or passthrough) can be satisfied by the
// same tuple, so regrouping cannot change first-match resolution.
func crossGroupsDisjoint(d DNF) bool {
	keys := make([]string, len(d.Conjs))
	for i, c := range d.Conjs {
		if attr, ok := soleIntervalAttr(c); ok {
			keys[i] = mergeKey(c, attr)
		} else {
			keys[i] = "passthrough|" + c.String()
		}
	}
	for i := 0; i < len(d.Conjs); i++ {
		for j := i + 1; j < len(d.Conjs); j++ {
			if keys[i] == keys[j] {
				continue
			}
			both := Conjunction{Preds: append(append([]Predicate(nil),
				d.Conjs[i].Preds...), d.Conjs[j].Preds...)}
			if !both.Unsatisfiable() {
				return false
			}
		}
	}
	return true
}

// touches reports whether an interval ending at (hi, hiClosed) connects to
// one starting at (lo, loClosed) with no gap: overlap, or exact adjacency
// where at least one side includes the boundary point.
func touches(hi float64, hiClosed bool, lo float64, loClosed bool) bool {
	if lo < hi {
		return true
	}
	if lo > hi {
		return false
	}
	return hiClosed || loClosed
}

// soleIntervalAttr finds the single numeric attribute the conjunction
// constrains, requiring a consistent, satisfiable conjunction and no
// equality-only point constraints mixed with categorical context. ok is
// false when zero or several numeric attributes are constrained.
func soleIntervalAttr(c Conjunction) (int, bool) {
	s := c.summarize()
	if s.contradict || len(s.numeric) != 1 {
		return 0, false
	}
	for attr := range s.numeric {
		return attr, true
	}
	return 0, false
}

// mergeKey renders everything except the varying attribute's interval: the
// categorical context, other predicates, and the builtin.
func mergeKey(c Conjunction, attr int) string {
	var parts []string
	for _, p := range c.Preds {
		if p.Attr != attr {
			parts = append(parts, p.String())
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, "&") + "|" + c.Builtin.String()
}

// rebuildWindow reconstructs the conjunction with the merged interval.
func rebuildWindow(template Conjunction, attr int, lo, hi float64, loClosed, hiClosed bool) Conjunction {
	out := Conjunction{Builtin: template.Builtin.Clone()}
	for _, p := range template.Preds {
		if p.Attr != attr {
			out.Preds = append(out.Preds, p)
		}
	}
	if lo == hi {
		out.Preds = append(out.Preds, NumPred(attr, Eq, lo))
		return out
	}
	if !math.IsInf(lo, -1) {
		op := Gt
		if loClosed {
			op = Ge
		}
		out.Preds = append(out.Preds, NumPred(attr, op, lo))
	}
	if !math.IsInf(hi, 1) {
		op := Lt
		if hiClosed {
			op = Le
		}
		out.Preds = append(out.Preds, NumPred(attr, op, hi))
	}
	return out
}
