package predicate

import (
	"strings"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
)

func parserSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Attribute{Name: "Date", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Latitude", Kind: dataset.Numeric},
		dataset.Attribute{Name: "BirdID", Kind: dataset.Categorical},
	)
}

func TestParseDNFPaperExample(t *testing.T) {
	// φ3's condition from Example 2, in ASCII.
	s := parserSchema()
	d, err := ParseDNF("Date>=223 && Date<255 && x[Date]=0 || Date>=953 && Date<985 && x[Date]=744", s)
	if err != nil {
		t.Fatalf("ParseDNF: %v", err)
	}
	if len(d.Conjs) != 2 {
		t.Fatalf("conjs = %d, want 2", len(d.Conjs))
	}
	if d.Conjs[1].Builtin.Shift(0) != 744 {
		t.Errorf("second disjunct Δ = %v, want 744", d.Conjs[1].Builtin.Shift(0))
	}
	tp := dataset.Tuple{dataset.Num(960), dataset.Num(50), dataset.Str("2.Maria")}
	if !d.Sat(tp) {
		t.Error("tuple in the second window should satisfy")
	}
	if d.Sat(dataset.Tuple{dataset.Num(500), dataset.Num(0), dataset.Str("x")}) {
		t.Error("tuple in the gap satisfied")
	}
}

func TestParseDNFCategoricalQuoted(t *testing.T) {
	s := parserSchema()
	d, err := ParseDNF("BirdID='2.Maria' && Date<100", s)
	if err != nil {
		t.Fatal(err)
	}
	c := d.Conjs[0]
	if len(c.Preds) != 2 || !c.Preds[0].Categorical || c.Preds[0].Str != "2.Maria" {
		t.Errorf("parsed %v", c.Preds)
	}
}

func TestParseDNFYShift(t *testing.T) {
	s := parserSchema()
	d, err := ParseDNF("Date>=10 && y=30", s)
	if err != nil {
		t.Fatal(err)
	}
	if d.Conjs[0].Builtin.YShift != 30 {
		t.Errorf("δ = %v", d.Conjs[0].Builtin.YShift)
	}
	if len(d.Conjs[0].Preds) != 1 {
		t.Error("builtin leaked into predicates")
	}
}

func TestParseDNFAllOperators(t *testing.T) {
	s := parserSchema()
	for _, src := range []string{"Date=5", "Date>5", "Date>=5", "Date<5", "Date<=5"} {
		d, err := ParseDNF(src, s)
		if err != nil {
			t.Errorf("ParseDNF(%q): %v", src, err)
			continue
		}
		if len(d.Conjs[0].Preds) != 1 {
			t.Errorf("%q parsed to %v", src, d.Conjs[0].Preds)
		}
	}
	// >= must not parse as > with constant "=5".
	d, _ := ParseDNF("Date>=5", s)
	if d.Conjs[0].Preds[0].Op != Ge {
		t.Errorf("Date>=5 parsed with op %v", d.Conjs[0].Preds[0].Op)
	}
}

func TestParseConjunctionEmptyIsTop(t *testing.T) {
	s := parserSchema()
	c, err := ParseConjunction("", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Preds) != 0 {
		t.Error("empty input should parse to ⊤")
	}
	if _, err := ParseConjunction("Date<1 || Date>2", s); err == nil {
		t.Error("disjunction accepted by ParseConjunction")
	}
}

func TestParseDNFErrors(t *testing.T) {
	s := parserSchema()
	cases := []string{
		"Nope>5",       // unknown attribute
		"BirdID>abc",   // inequality on categorical
		"Date>abc",     // non-numeric constant
		"Date",         // no operator
		"Date>5 && ",   // empty term
		"y=notanumber", // bad builtin
		"x[Date=5",     // missing ]
		"x[Date] 5",    // missing =
		"x[Nope]=5",    // unknown builtin attribute
		"",             // empty condition handled as error? empty conj is ⊤ but DNF of one empty conj is fine
	}
	for _, c := range cases[:len(cases)-1] {
		if _, err := ParseDNF(c, s); err == nil {
			t.Errorf("ParseDNF(%q) accepted", c)
		}
	}
	// The empty string parses as the single empty conjunction ⊤.
	d, err := ParseDNF("", s)
	if err != nil || len(d.Conjs) != 1 || len(d.Conjs[0].Preds) != 0 {
		t.Errorf("ParseDNF(\"\") = %v, %v", d, err)
	}
}

func TestParseRoundTripThroughFormat(t *testing.T) {
	s := parserSchema()
	src := "Date>=10 && Date<20 || BirdID='2.Maria' && y=3"
	d, err := ParseDNF(src, s)
	if err != nil {
		t.Fatal(err)
	}
	// The formatted output is human syntax (∧/∨); re-parse via translation.
	ascii := d.Format(s)
	ascii = strings.ReplaceAll(ascii, "∧", "&&")
	ascii = strings.ReplaceAll(ascii, "∨", "||")
	ascii = strings.ReplaceAll(ascii, "(", "")
	ascii = strings.ReplaceAll(ascii, ")", "")
	back, err := ParseDNF(ascii, s)
	if err != nil {
		t.Fatalf("re-parse %q: %v", ascii, err)
	}
	// Same satisfaction behavior.
	for date := 0.0; date < 30; date += 1 {
		for _, bird := range []string{"2.Maria", "other"} {
			tp := dataset.Tuple{dataset.Num(date), dataset.Num(0), dataset.Str(bird)}
			if d.Sat(tp) != back.Sat(tp) {
				t.Fatalf("round trip diverged at %v/%s", date, bird)
			}
		}
	}
}

func TestSplitTopRespectsQuotes(t *testing.T) {
	parts := splitTop("BirdID='a&&b' && Date<5", "&&")
	if len(parts) != 2 {
		t.Fatalf("splitTop = %v", parts)
	}
}
