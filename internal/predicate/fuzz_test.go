package predicate

import (
	"testing"

	"github.com/crrlab/crr/internal/dataset"
)

// FuzzParseDNF exercises the condition parser with arbitrary inputs: it must
// never panic, and whatever it accepts must evaluate without panicking.
func FuzzParseDNF(f *testing.F) {
	f.Add("Date>=10 && Date<20")
	f.Add("BirdID='2.Maria' || y=30")
	f.Add("x[Date]=744 && Date>0")
	f.Add("Date>=")
	f.Add("&&||")
	f.Add("y=x[Date]=1")
	f.Fuzz(func(t *testing.T, input string) {
		schema := dataset.MustSchema(
			dataset.Attribute{Name: "Date", Kind: dataset.Numeric},
			dataset.Attribute{Name: "BirdID", Kind: dataset.Categorical},
		)
		d, err := ParseDNF(input, schema)
		if err != nil {
			return
		}
		// Accepted conditions must be evaluable.
		tuples := []dataset.Tuple{
			{dataset.Num(0), dataset.Str("2.Maria")},
			{dataset.Num(1000), dataset.Str("x")},
			{dataset.Null(), dataset.Null()},
		}
		for _, tp := range tuples {
			_ = d.Sat(tp)
		}
		_ = d.Simplify()
		_ = d.String()
	})
}
