// Package predicate implements the condition language of conditional
// regression rules: single-tuple predicates A φ c over the operator set
// {=, >, ≥, <, ≤} (paper §III-A1), built-in translation predicates
// x = Δ and y = δ (§III-A3), conjunctions, DNF conditions (§III-A2), and the
// implication relations ⊢ on conjunctions and DNFs (Definition 2) that power
// the Induction inference.
package predicate

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/crrlab/crr/internal/dataset"
)

// Op is a comparison operator from the paper's operator set Φ.
type Op int

const (
	Eq Op = iota // =
	Gt           // >
	Ge           // ≥
	Lt           // <
	Le           // ≤
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Lt:
		return "<"
	case Le:
		return "<="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Predicate is a single-tuple predicate A φ c. Attr is the attribute's index
// in the relation schema. For categorical attributes only Eq is meaningful
// and Str carries the constant; for numeric attributes Num does.
type Predicate struct {
	Attr        int
	Op          Op
	Num         float64
	Str         string
	Categorical bool
}

// NumPred builds a numeric predicate attr φ c.
func NumPred(attr int, op Op, c float64) Predicate {
	return Predicate{Attr: attr, Op: op, Num: c}
}

// StrPred builds a categorical equality predicate attr = s.
func StrPred(attr int, s string) Predicate {
	return Predicate{Attr: attr, Op: Eq, Str: s, Categorical: true}
}

// Sat reports whether tuple t satisfies the predicate. A null cell satisfies
// no predicate.
func (p Predicate) Sat(t dataset.Tuple) bool {
	v := t[p.Attr]
	if v.Null {
		return false
	}
	if p.Categorical {
		return p.Op == Eq && v.Str == p.Str
	}
	switch p.Op {
	case Eq:
		return v.Num == p.Num
	case Gt:
		return v.Num > p.Num
	case Ge:
		return v.Num >= p.Num
	case Lt:
		return v.Num < p.Num
	case Le:
		return v.Num <= p.Num
	default:
		return false
	}
}

// Implies reports whether p ⊢ q for two predicates over the same attribute:
// every tuple satisfying p satisfies q. Predicates on different attributes
// never imply one another. NaN constants on either side never imply: every
// NaN comparison below is already false, but the guard makes the contract
// explicit — implications must not be derived from garbage constants.
func (p Predicate) Implies(q Predicate) bool {
	if p.Attr != q.Attr || p.Categorical != q.Categorical {
		return false
	}
	if !p.Categorical && (math.IsNaN(p.Num) || math.IsNaN(q.Num)) {
		return false
	}
	if p.Categorical {
		return p.Op == Eq && q.Op == Eq && p.Str == q.Str
	}
	switch p.Op {
	case Eq:
		// {v = c} ⊆ {v φ d} iff c satisfies q.
		probe := dataset.Tuple{dataset.Num(p.Num)}
		q2 := q
		q2.Attr = 0
		return q2.Sat(probe)
	case Gt:
		switch q.Op {
		case Gt:
			return p.Num >= q.Num
		case Ge:
			return p.Num >= q.Num
		}
	case Ge:
		switch q.Op {
		case Gt:
			return p.Num > q.Num
		case Ge:
			return p.Num >= q.Num
		}
	case Lt:
		switch q.Op {
		case Lt:
			return p.Num <= q.Num
		case Le:
			return p.Num <= q.Num
		}
	case Le:
		switch q.Op {
		case Lt:
			return p.Num < q.Num
		case Le:
			return p.Num <= q.Num
		}
	}
	return false
}

// String renders the predicate using the schema-free attribute index.
func (p Predicate) String() string {
	if p.Categorical {
		return fmt.Sprintf("A%d=%s", p.Attr, p.Str)
	}
	return fmt.Sprintf("A%d%s%s", p.Attr, p.Op, strconv.FormatFloat(p.Num, 'g', -1, 64))
}

// Format renders the predicate with attribute names from schema.
func (p Predicate) Format(schema *dataset.Schema) string {
	name := schema.Attr(p.Attr).Name
	if p.Categorical {
		return fmt.Sprintf("%s=%s", name, p.Str)
	}
	return fmt.Sprintf("%s%s%s", name, p.Op, strconv.FormatFloat(p.Num, 'g', -1, 64))
}

// Builtin carries the built-in translation predicates of one conjunction:
// x = Δ per translated attribute (keyed by attribute index) and y = δ on the
// target (paper §III-A3). A tuple is satisfied by any built-in predicate;
// builtins only parameterize the regression function application.
type Builtin struct {
	XShift map[int]float64
	YShift float64
}

// ZeroBuiltin is the default x = 0 ∧ y = 0 builtin.
func ZeroBuiltin() Builtin { return Builtin{} }

// IsZero reports whether every shift is zero.
func (b Builtin) IsZero() bool {
	if b.YShift != 0 {
		return false
	}
	for _, v := range b.XShift {
		if v != 0 {
			return false
		}
	}
	return true
}

// Shift returns the Δ for attribute attr (0 when absent).
func (b Builtin) Shift(attr int) float64 { return b.XShift[attr] }

// WithXShift returns a copy of b with Δ set for attr.
func (b Builtin) WithXShift(attr int, delta float64) Builtin {
	out := b.Clone()
	if out.XShift == nil {
		out.XShift = make(map[int]float64, 1)
	}
	out.XShift[attr] = delta
	return out
}

// WithYShift returns a copy of b with δ set.
func (b Builtin) WithYShift(delta float64) Builtin {
	out := b.Clone()
	out.YShift = delta
	return out
}

// Add returns the composition of two builtins: Δ” = Δ + Δ', δ” = δ + δ'
// (Proposition 9's built-in predicate decision).
func (b Builtin) Add(o Builtin) Builtin {
	out := b.Clone()
	if len(o.XShift) > 0 && out.XShift == nil {
		out.XShift = make(map[int]float64, len(o.XShift))
	}
	for k, v := range o.XShift {
		out.XShift[k] += v
	}
	out.YShift += o.YShift
	return out
}

// Clone deep-copies the builtin.
func (b Builtin) Clone() Builtin {
	out := Builtin{YShift: b.YShift}
	if b.XShift != nil {
		out.XShift = make(map[int]float64, len(b.XShift))
		for k, v := range b.XShift {
			out.XShift[k] = v
		}
	}
	return out
}

// Equal reports component-wise equality, treating absent Δ entries as zero.
func (b Builtin) Equal(o Builtin) bool {
	if b.YShift != o.YShift {
		return false
	}
	keys := make(map[int]struct{}, len(b.XShift)+len(o.XShift))
	for k := range b.XShift {
		keys[k] = struct{}{}
	}
	for k := range o.XShift {
		keys[k] = struct{}{}
	}
	for k := range keys {
		if b.XShift[k] != o.XShift[k] {
			return false
		}
	}
	return true
}

// String renders the builtin as "x_i=Δ,y=δ" terms; empty for the zero builtin.
func (b Builtin) String() string {
	var parts []string
	keys := make([]int, 0, len(b.XShift))
	for k := range b.XShift {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		if b.XShift[k] != 0 {
			parts = append(parts, fmt.Sprintf("x%d=%s", k, strconv.FormatFloat(b.XShift[k], 'g', -1, 64)))
		}
	}
	if b.YShift != 0 {
		parts = append(parts, fmt.Sprintf("y=%s", strconv.FormatFloat(b.YShift, 'g', -1, 64)))
	}
	return strings.Join(parts, ",")
}
