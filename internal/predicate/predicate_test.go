package predicate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/crrlab/crr/internal/dataset"
)

func tup(vals ...float64) dataset.Tuple {
	t := make(dataset.Tuple, len(vals))
	for i, v := range vals {
		t[i] = dataset.Num(v)
	}
	return t
}

func TestPredicateSatNumeric(t *testing.T) {
	cases := []struct {
		p    Predicate
		v    float64
		want bool
	}{
		{NumPred(0, Eq, 5), 5, true},
		{NumPred(0, Eq, 5), 5.1, false},
		{NumPred(0, Gt, 5), 5, false},
		{NumPred(0, Gt, 5), 6, true},
		{NumPred(0, Ge, 5), 5, true},
		{NumPred(0, Ge, 5), 4.9, false},
		{NumPred(0, Lt, 5), 4, true},
		{NumPred(0, Lt, 5), 5, false},
		{NumPred(0, Le, 5), 5, true},
		{NumPred(0, Le, 5), 5.1, false},
	}
	for _, c := range cases {
		if got := c.p.Sat(tup(c.v)); got != c.want {
			t.Errorf("%v.Sat(%v) = %v, want %v", c.p, c.v, got, c.want)
		}
	}
}

func TestPredicateSatCategorical(t *testing.T) {
	p := StrPred(0, "IA")
	if !p.Sat(dataset.Tuple{dataset.Str("IA")}) {
		t.Error("matching categorical not satisfied")
	}
	if p.Sat(dataset.Tuple{dataset.Str("NY")}) {
		t.Error("non-matching categorical satisfied")
	}
}

func TestPredicateSatNull(t *testing.T) {
	if NumPred(0, Ge, 0).Sat(dataset.Tuple{dataset.Null()}) {
		t.Error("null cell satisfied a predicate")
	}
}

func TestPredicateImpliesTable(t *testing.T) {
	cases := []struct {
		p, q Predicate
		want bool
	}{
		{NumPred(0, Gt, 5), NumPred(0, Gt, 3), true},
		{NumPred(0, Gt, 5), NumPred(0, Ge, 5), true},
		{NumPred(0, Gt, 5), NumPred(0, Gt, 6), false},
		{NumPred(0, Ge, 5), NumPred(0, Gt, 4), true},
		{NumPred(0, Ge, 5), NumPred(0, Gt, 5), false},
		{NumPred(0, Lt, 3), NumPred(0, Le, 3), true},
		{NumPred(0, Le, 3), NumPred(0, Lt, 3), false},
		{NumPred(0, Le, 3), NumPred(0, Lt, 4), true},
		{NumPred(0, Eq, 5), NumPred(0, Ge, 5), true},
		{NumPred(0, Eq, 5), NumPred(0, Gt, 5), false},
		{NumPred(0, Eq, 5), NumPred(0, Le, 5), true},
		{NumPred(0, Eq, 5), NumPred(0, Eq, 5), true},
		{NumPred(0, Eq, 5), NumPred(0, Eq, 6), false},
		{NumPred(0, Gt, 5), NumPred(1, Gt, 3), false}, // different attrs
		{NumPred(0, Gt, 5), NumPred(0, Lt, 9), false}, // > never implies <
	}
	for _, c := range cases {
		if got := c.p.Implies(c.q); got != c.want {
			t.Errorf("%v ⊢ %v = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestStrPredImplies(t *testing.T) {
	if !StrPred(0, "a").Implies(StrPred(0, "a")) {
		t.Error("identical categorical predicates should imply")
	}
	if StrPred(0, "a").Implies(StrPred(0, "b")) {
		t.Error("different constants imply")
	}
	if StrPred(0, "a").Implies(NumPred(0, Eq, 1)) {
		t.Error("categorical implies numeric")
	}
}

// randomPred draws a random numeric predicate on attribute 0 with constants
// in a small integer grid so that edge cases (equal constants) are common.
func randomPred(rng *rand.Rand) Predicate {
	ops := []Op{Eq, Gt, Ge, Lt, Le}
	return NumPred(0, ops[rng.Intn(len(ops))], float64(rng.Intn(7)-3))
}

// Property: Implies is sound — whenever p ⊢ q, every satisfying point of p
// satisfies q (checked on a dense grid including the constants).
func TestPredicateImpliesSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, q := randomPred(rng), randomPred(rng)
		if !p.Implies(q) {
			return true
		}
		for v := -4.0; v <= 4.0; v += 0.25 {
			tpl := tup(v)
			if p.Sat(tpl) && !q.Sat(tpl) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Implies is complete on the grid — if every grid point satisfying
// p satisfies q and p is satisfiable on the grid, then p ⊢ q must hold for
// same-attribute numeric predicates with grid-aligned constants. The 0.25
// step is finer than the 1.0 constant grid, so open/closed boundary
// distinctions are visible to the grid check.
func TestPredicateImpliesCompleteOnGrid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, q := randomPred(rng), randomPred(rng)
		sat := false
		entailed := true
		for v := -4.0; v <= 4.0; v += 0.25 {
			tpl := tup(v)
			if p.Sat(tpl) {
				sat = true
				if !q.Sat(tpl) {
					entailed = false
					break
				}
			}
		}
		if !sat || !entailed {
			return true // nothing to check
		}
		return p.Implies(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBuiltinCompose(t *testing.T) {
	b := ZeroBuiltin().WithXShift(2, 10).WithYShift(-3)
	c := ZeroBuiltin().WithXShift(2, 5).WithXShift(1, 1).WithYShift(4)
	sum := b.Add(c)
	if sum.Shift(2) != 15 || sum.Shift(1) != 1 || sum.YShift != 1 {
		t.Errorf("Add = %+v", sum)
	}
	// Operands untouched.
	if b.Shift(2) != 10 || b.YShift != -3 {
		t.Error("Add mutated receiver")
	}
	if c.Shift(1) != 1 {
		t.Error("Add mutated argument")
	}
}

func TestBuiltinEqual(t *testing.T) {
	a := ZeroBuiltin().WithXShift(0, 0).WithYShift(0)
	if !a.Equal(ZeroBuiltin()) {
		t.Error("explicit zero shifts should equal the zero builtin")
	}
	b := ZeroBuiltin().WithXShift(0, 1)
	if a.Equal(b) {
		t.Error("distinct shifts reported equal")
	}
}

func TestBuiltinIsZeroAndString(t *testing.T) {
	if !ZeroBuiltin().IsZero() {
		t.Error("zero builtin not zero")
	}
	b := ZeroBuiltin().WithXShift(1, 2).WithYShift(-1)
	if b.IsZero() {
		t.Error("shifted builtin reported zero")
	}
	if b.String() != "x1=2,y=-1" {
		t.Errorf("String = %q", b.String())
	}
	if ZeroBuiltin().String() != "" {
		t.Error("zero builtin should render empty")
	}
}

func TestOpString(t *testing.T) {
	want := map[Op]string{Eq: "=", Gt: ">", Ge: ">=", Lt: "<", Le: "<="}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("Op %d String = %q, want %q", op, op.String(), s)
		}
	}
}

func TestPredicateFormat(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "Date", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Bird", Kind: dataset.Categorical},
	)
	if got := NumPred(0, Ge, 2006.5).Format(schema); got != "Date>=2006.5" {
		t.Errorf("Format = %q", got)
	}
	if got := StrPred(1, "Maria").Format(schema); got != "Bird=Maria" {
		t.Errorf("Format = %q", got)
	}
}
