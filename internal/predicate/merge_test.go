package predicate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/crrlab/crr/internal/dataset"
)

func window(lo, hi float64) Conjunction {
	return NewConjunction(NumPred(0, Ge, lo), NumPred(0, Lt, hi))
}

func TestMergeAdjacentChain(t *testing.T) {
	d := NewDNF(window(0, 10), window(10, 20), window(20, 30))
	m := d.MergeAdjacent()
	if len(m.Conjs) != 1 {
		t.Fatalf("merged to %d disjuncts, want 1: %v", len(m.Conjs), m)
	}
	lo, hi, ok := m.Conjs[0].NumericBounds(0)
	if !ok || lo != 0 || hi != 30 {
		t.Errorf("merged bounds [%v, %v]", lo, hi)
	}
}

func TestMergeAdjacentKeepsGaps(t *testing.T) {
	d := NewDNF(window(0, 10), window(15, 20))
	m := d.MergeAdjacent()
	if len(m.Conjs) != 2 {
		t.Fatalf("gap merged away: %v", m)
	}
}

func TestMergeAdjacentRespectsBuiltins(t *testing.T) {
	a := window(0, 10)
	b := window(10, 20)
	b.Builtin = b.Builtin.WithYShift(5) // different shift → no merge
	m := NewDNF(a, b).MergeAdjacent()
	if len(m.Conjs) != 2 {
		t.Fatalf("windows with different builtins merged: %v", m)
	}
	// Equal builtins do merge.
	c := window(10, 20)
	c.Builtin = c.Builtin.WithYShift(5)
	d := window(0, 10)
	d.Builtin = d.Builtin.WithYShift(5)
	m = NewDNF(d, c).MergeAdjacent()
	if len(m.Conjs) != 1 {
		t.Fatalf("equal-builtin windows did not merge: %v", m)
	}
	if m.Conjs[0].Builtin.YShift != 5 {
		t.Error("merged window lost its builtin")
	}
}

func TestMergeAdjacentRespectsContext(t *testing.T) {
	a := window(0, 10).And(StrPred(1, "x"))
	b := window(10, 20).And(StrPred(1, "y"))
	m := NewDNF(a, b).MergeAdjacent()
	if len(m.Conjs) != 2 {
		t.Fatalf("windows with different categorical context merged: %v", m)
	}
	c := window(10, 20).And(StrPred(1, "x"))
	m = NewDNF(a, c).MergeAdjacent()
	if len(m.Conjs) != 1 {
		t.Fatalf("same-context windows did not merge: %v", m)
	}
	// The context predicate survives the merge.
	withX := dataset.Tuple{dataset.Num(5), dataset.Str("x")}
	withY := dataset.Tuple{dataset.Num(5), dataset.Str("y")}
	if !m.Conjs[0].Sat(withX) || m.Conjs[0].Sat(withY) {
		t.Error("context lost in merge")
	}
}

func TestMergeAdjacentBoundaryClosedness(t *testing.T) {
	// (0,10) and (10,20) — both open at 10 — leave a hole; no merge.
	a := NewConjunction(NumPred(0, Gt, 0), NumPred(0, Lt, 10))
	b := NewConjunction(NumPred(0, Gt, 10), NumPred(0, Lt, 20))
	if m := NewDNF(a, b).MergeAdjacent(); len(m.Conjs) != 2 {
		t.Fatalf("open-open boundary merged over the hole at 10: %v", m)
	}
	// (0,10] and (10,20) touch: merge.
	c := NewConjunction(NumPred(0, Gt, 0), NumPred(0, Le, 10))
	if m := NewDNF(c, b).MergeAdjacent(); len(m.Conjs) != 1 {
		t.Fatalf("closed-open boundary did not merge: %v", m)
	}
}

func TestMergeAdjacentPassthrough(t *testing.T) {
	// Disjuncts constraining several numeric attributes pass through.
	multi := NewConjunction(NumPred(0, Ge, 0), NumPred(2, Lt, 5))
	m := NewDNF(multi, window(0, 10)).MergeAdjacent()
	if len(m.Conjs) != 2 {
		t.Fatalf("multi-attribute disjunct handled wrongly: %v", m)
	}
}

// Property: MergeAdjacent preserves satisfaction on a grid.
func TestMergeAdjacentPreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var conjs []Conjunction
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			lo := float64(rng.Intn(12) - 6)
			c := window(lo, lo+float64(1+rng.Intn(5)))
			if rng.Intn(3) == 0 {
				c.Builtin = c.Builtin.WithYShift(float64(rng.Intn(2)))
			}
			conjs = append(conjs, c)
		}
		d := NewDNF(conjs...)
		m := d.MergeAdjacent()
		if len(m.Conjs) > len(d.Conjs) {
			return false
		}
		for x := -8.0; x <= 14.0; x += 0.25 {
			tpl := tup(x)
			if d.Sat(tpl) != m.Sat(tpl) {
				return false
			}
			// The builtin a tuple resolves to must be preserved.
			c1, ok1 := d.MatchConjunction(tpl)
			c2, ok2 := m.MatchConjunction(tpl)
			if ok1 != ok2 {
				return false
			}
			if ok1 && !c1.Builtin.Equal(c2.Builtin) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
