package predicate

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
)

// rangeTestRelation builds a relation with nullable numeric and categorical
// columns, the categorical domain wide enough to spill the dictionary map.
func rangeTestRelation(n int, seed int64) *dataset.Relation {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "x", Kind: dataset.Numeric},
		dataset.Attribute{Name: "c", Kind: dataset.Categorical},
	)
	rng := rand.New(rand.NewSource(seed))
	rel := dataset.NewRelation(schema)
	for i := 0; i < n; i++ {
		x := dataset.Num(rng.NormFloat64())
		if rng.Intn(9) == 0 {
			x = dataset.Null()
		}
		c := dataset.Str(fmt.Sprintf("v%d", rng.Intn(25)))
		if rng.Intn(11) == 0 {
			c = dataset.Null()
		}
		rel.MustAppend(dataset.Tuple{x, c})
	}
	return rel
}

// TestFilterRangeChunkParity: for any partition of [0, rows) into chunks,
// concatenating FilterRange results must equal Filter over the identity
// selection — the contract chunked out-of-core scans rely on.
func TestFilterRangeChunkParity(t *testing.T) {
	rel := rangeTestRelation(700, 5)
	cs := dataset.NewColumnSet(rel)
	full := cs.View().Sel

	preds := []Predicate{
		NumPred(0, Gt, 0.2),
		NumPred(0, Le, -0.1),
		NumPred(0, Eq, 0),
		StrPred(1, "v3"),
		StrPred(1, "absent"),
	}
	conjs := []Conjunction{
		{},
		{Preds: []Predicate{NumPred(0, Gt, -1), NumPred(0, Le, 1)}},
		{Preds: []Predicate{StrPred(1, "v3"), NumPred(0, Gt, 0)}},
	}
	chunkSizes := []int{1, 63, 64, 65, 100, 700, 1000}
	for _, p := range preds {
		want := p.Filter(cs, full, nil)
		for _, chunk := range chunkSizes {
			var got []int
			var buf []int
			for lo := 0; lo < cs.Len(); lo += chunk {
				hi := lo + chunk
				buf = p.FilterRange(cs, lo, hi, buf)
				got = append(got, buf...)
			}
			if !equalInts(got, want) {
				t.Fatalf("pred %v chunk %d: %d rows vs %d", p, chunk, len(got), len(want))
			}
		}
	}
	for ci, c := range conjs {
		want := c.Filter(cs, full, nil)
		for _, chunk := range chunkSizes {
			var got []int
			var buf []int
			for lo := 0; lo < cs.Len(); lo += chunk {
				buf = c.FilterRange(cs, lo, lo+chunk, buf)
				got = append(got, buf...)
			}
			if !equalInts(got, want) {
				t.Fatalf("conj %d chunk %d: %d rows vs %d", ci, chunk, len(got), len(want))
			}
		}
	}
}

// TestFilterRangeClamps: out-of-bounds ranges clamp instead of panicking.
func TestFilterRangeClamps(t *testing.T) {
	rel := rangeTestRelation(10, 1)
	cs := dataset.NewColumnSet(rel)
	p := NumPred(0, Gt, -1000)
	if got := p.FilterRange(cs, -5, 1000, nil); len(got) > cs.Len() {
		t.Fatalf("clamped range returned %d rows for %d", len(got), cs.Len())
	}
	if got := p.FilterRange(cs, 8, 3, nil); len(got) != 0 {
		t.Fatalf("inverted range returned %d rows", len(got))
	}
}

// TestGenerateColumnsParity: predicate generation over a ColumnSet must
// produce exactly the predicates generation over the source relation does,
// for every generator kind — the out-of-core discovery path depends on the
// predicate spaces being interchangeable.
func TestGenerateColumnsParity(t *testing.T) {
	rel := rangeTestRelation(400, 7)
	cs := dataset.NewColumnSet(rel)
	attrs := []int{0, 1}
	configs := []GeneratorConfig{
		{Kind: Binary, Size: 16},
		{Kind: Binary, Size: 0},
		{Kind: Random, Size: 8, Seed: 42},
		{Kind: Expert, Size: 8, ExpertCuts: map[int][]float64{0: {0.5, -0.5}}},
	}
	for _, cfg := range configs {
		want := Generate(rel, attrs, cfg)
		got := GenerateColumns(cs, attrs, cfg)
		if len(got) != len(want) {
			t.Fatalf("cfg %+v: %d preds vs %d", cfg, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cfg %+v pred %d: %v vs %v", cfg, i, got[i], want[i])
			}
		}
	}
}
