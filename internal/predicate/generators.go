package predicate

import (
	"math/rand"
	"sort"

	"github.com/crrlab/crr/internal/dataset"
)

// GeneratorKind selects one of the paper's three predicate-generation
// strategies (§VI-D2, Table III).
type GeneratorKind int

const (
	// Binary recursively bisects each attribute domain; with size 2ⁿ the
	// generated cut points segment the domain into 2ⁿ⁻¹ sections.
	Binary GeneratorKind = iota
	// Random draws |ℙ|/2 constants uniformly from the observed domain.
	Random
	// Expert uses caller-provided cut points (domain knowledge), topping up
	// with binary cuts when too few are given.
	Expert
)

// String implements fmt.Stringer.
func (k GeneratorKind) String() string {
	switch k {
	case Binary:
		return "binary"
	case Random:
		return "random"
	case Expert:
		return "expert"
	default:
		return "unknown"
	}
}

// GeneratorConfig parameterizes Generate.
type GeneratorConfig struct {
	Kind GeneratorKind
	// Size is the target number of predicates per numeric attribute; each
	// cut point c yields the pair {A > c, A ≤ c}, so Size/2 cuts are chosen.
	// Size ≤ 0 selects the paper's default (§VI-A2): a predicate pair at
	// every distinct domain value.
	Size int
	// ExpertCuts maps attribute index → cut points for the Expert kind.
	ExpertCuts map[int][]float64
	// Seed drives the Random kind.
	Seed int64
}

// domainSource abstracts where attribute domains come from: a Relation
// (tuple scan) or a ColumnSet (lane scan + dictionary) — both return sorted
// distinct non-null values, so generation over either source yields the same
// predicate space for the same data.
type domainSource interface {
	Domain(attr int) []float64
	CategoricalDomain(attr int) []string
}

// Generate builds the predicate space ℙ for the given relation restricted to
// the attrs columns (the condition attributes; the regression target must be
// excluded by the caller, per Definition 1 "no predicates on attribute Y").
// Numeric attributes contribute {>, ≤} pairs at generated cut points; for
// categorical attributes every domain value contributes one equality
// predicate (the paper's natural segregation, e.g. per-bird predicates).
func Generate(rel *dataset.Relation, attrs []int, cfg GeneratorConfig) []Predicate {
	return generate(rel.Schema, rel, attrs, cfg)
}

// GenerateColumns is Generate over a ColumnSet — the entry point when no
// Relation exists (out-of-core stores, streaming windows). For the same
// underlying data it produces the same predicates as Generate, cut for cut.
func GenerateColumns(cs *dataset.ColumnSet, attrs []int, cfg GeneratorConfig) []Predicate {
	return generate(cs.Schema, cs, attrs, cfg)
}

func generate(schema *dataset.Schema, src domainSource, attrs []int, cfg GeneratorConfig) []Predicate {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []Predicate
	for _, attr := range attrs {
		if schema.Attr(attr).Kind == dataset.Categorical {
			for _, v := range src.CategoricalDomain(attr) {
				out = append(out, StrPred(attr, v))
			}
			continue
		}
		domain := src.Domain(attr)
		if len(domain) < 2 {
			continue
		}
		if cfg.Size <= 0 {
			// The paper's default: A φ c on each domain value (the last
			// value yields no split and is skipped).
			for _, c := range domain[:len(domain)-1] {
				out = append(out, NumPred(attr, Gt, c), NumPred(attr, Le, c))
			}
			continue
		}
		nCuts := cfg.Size / 2
		if nCuts < 1 {
			nCuts = 1
		}
		var cuts []float64
		switch cfg.Kind {
		case Binary:
			cuts = binaryCuts(domain, nCuts)
		case Random:
			cuts = randomCuts(domain, nCuts, rng)
		case Expert:
			cuts = append(cuts, cfg.ExpertCuts[attr]...)
			if len(cuts) > nCuts {
				cuts = cuts[:nCuts]
			}
			if len(cuts) < nCuts {
				cuts = append(cuts, binaryCuts(domain, nCuts-len(cuts))...)
			}
		}
		cuts = dedupSorted(cuts)
		for _, c := range cuts {
			out = append(out, NumPred(attr, Gt, c), NumPred(attr, Le, c))
		}
	}
	return out
}

// binaryCuts returns n cut points chosen by recursive bisection of the
// domain quantiles: 1/2 first, then 1/4 and 3/4, then eighths, and so on —
// the "binary separation" of §VI-D2.
func binaryCuts(domain []float64, n int) []float64 {
	if len(domain) < 2 || n < 1 {
		return nil
	}
	var cuts []float64
	// Breadth-first over quantile positions k/2^level.
	for level := 1; len(cuts) < n && level < 31; level++ {
		den := 1 << level
		for num := 1; num < den && len(cuts) < n; num += 2 {
			idx := len(domain) * num / den
			if idx >= len(domain) {
				idx = len(domain) - 1
			}
			cuts = append(cuts, domain[idx])
		}
	}
	return cuts
}

// randomCuts draws n constants uniformly from the domain values.
func randomCuts(domain []float64, n int, rng *rand.Rand) []float64 {
	cuts := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		cuts = append(cuts, domain[rng.Intn(len(domain))])
	}
	return cuts
}

func dedupSorted(v []float64) []float64 {
	if len(v) == 0 {
		return v
	}
	sort.Float64s(v)
	out := v[:1]
	for _, x := range v[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
