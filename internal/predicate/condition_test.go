package predicate

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/crrlab/crr/internal/dataset"
)

func TestConjunctionSat(t *testing.T) {
	c := NewConjunction(NumPred(0, Ge, 2), NumPred(0, Lt, 5))
	if !c.Sat(tup(3)) {
		t.Error("3 should satisfy [2,5)")
	}
	if c.Sat(tup(5)) {
		t.Error("5 should not satisfy [2,5)")
	}
	if !NewConjunction().Sat(tup(42)) {
		t.Error("empty conjunction must hold for every tuple")
	}
}

func TestConjunctionAndClone(t *testing.T) {
	c := NewConjunction(NumPred(0, Ge, 0))
	d := c.And(NumPred(0, Lt, 1))
	if len(c.Preds) != 1 || len(d.Preds) != 2 {
		t.Fatal("And mutated the receiver")
	}
	e := d.Clone()
	e.Preds[0] = NumPred(0, Ge, 99)
	if d.Preds[0].Num == 99 {
		t.Error("Clone shares predicate storage")
	}
}

func TestConjunctionUnsatisfiable(t *testing.T) {
	cases := []struct {
		c    Conjunction
		want bool
	}{
		{NewConjunction(NumPred(0, Gt, 5), NumPred(0, Lt, 3)), true},
		{NewConjunction(NumPred(0, Gt, 5), NumPred(0, Lt, 5)), true},
		{NewConjunction(NumPred(0, Ge, 5), NumPred(0, Le, 5)), false}, // exactly 5
		{NewConjunction(NumPred(0, Gt, 5), NumPred(0, Le, 5)), true},
		{NewConjunction(NumPred(0, Eq, 5), NumPred(0, Eq, 6)), true},
		{NewConjunction(NumPred(0, Eq, 5), NumPred(0, Ge, 5)), false},
		{NewConjunction(StrPred(1, "a"), StrPred(1, "b")), true},
		{NewConjunction(StrPred(1, "a"), StrPred(1, "a")), false},
		{NewConjunction(), false},
	}
	for i, c := range cases {
		if got := c.c.Unsatisfiable(); got != c.want {
			t.Errorf("case %d (%v): Unsatisfiable = %v, want %v", i, c.c, got, c.want)
		}
	}
}

func TestConjunctionImplies(t *testing.T) {
	narrow := NewConjunction(NumPred(0, Ge, 2), NumPred(0, Lt, 4))
	wide := NewConjunction(NumPred(0, Ge, 0), NumPred(0, Lt, 10))
	if !narrow.Implies(wide) {
		t.Error("[2,4) should imply [0,10)")
	}
	if wide.Implies(narrow) {
		t.Error("[0,10) should not imply [2,4)")
	}
	// Everything implies the empty conjunction.
	if !narrow.Implies(NewConjunction()) {
		t.Error("C must imply ⊤")
	}
	// The empty conjunction implies nothing restrictive.
	if NewConjunction().Implies(narrow) {
		t.Error("⊤ implies a restriction")
	}
	// Categorical refinement: (S=IA ∧ MS=S) ⊢ (S=IA), the paper's Induction
	// example.
	refined := NewConjunction(StrPred(1, "IA"), StrPred(2, "S"))
	base := NewConjunction(StrPred(1, "IA"))
	if !refined.Implies(base) {
		t.Error("refined condition should imply its base")
	}
	if base.Implies(refined) {
		t.Error("base implies refinement")
	}
	// Unsatisfiable implies anything.
	contra := NewConjunction(NumPred(0, Gt, 5), NumPred(0, Lt, 3))
	if !contra.Implies(narrow) {
		t.Error("unsatisfiable conjunction must imply everything")
	}
}

func TestConjunctionEquivalent(t *testing.T) {
	a := NewConjunction(NumPred(0, Ge, 2), NumPred(0, Ge, 1))
	b := NewConjunction(NumPred(0, Ge, 2))
	if !a.Equivalent(b) {
		t.Error("A≥2∧A≥1 should be equivalent to A≥2")
	}
}

// randomConj builds a small random conjunction over two attributes.
func randomConj(rng *rand.Rand) Conjunction {
	n := rng.Intn(3)
	c := NewConjunction()
	for i := 0; i < n; i++ {
		p := randomPred(rng)
		p.Attr = rng.Intn(2)
		c = c.And(p)
	}
	return c
}

// Property: conjunction implication is sound on a 2-attribute grid.
func TestConjunctionImpliesSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, d := randomConj(rng), randomConj(rng)
		if !c.Implies(d) {
			return true
		}
		for x := -4.0; x <= 4.0; x += 0.5 {
			for y := -4.0; y <= 4.0; y += 0.5 {
				tpl := tup(x, y)
				if c.Sat(tpl) && !d.Sat(tpl) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Unsatisfiable conjunctions truly have no satisfying grid point.
func TestUnsatisfiableSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomConj(rng)
		if !c.Unsatisfiable() {
			return true
		}
		for x := -4.0; x <= 4.0; x += 0.25 {
			for y := -4.0; y <= 4.0; y += 0.25 {
				if c.Sat(tup(x, y)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDNFSatAndMatch(t *testing.T) {
	d := NewDNF(
		NewConjunction(NumPred(0, Lt, 0)),
		NewConjunction(NumPred(0, Gt, 10)),
	)
	if !d.Sat(tup(-1)) || !d.Sat(tup(11)) {
		t.Error("DNF should hold on either disjunct")
	}
	if d.Sat(tup(5)) {
		t.Error("DNF held in the gap")
	}
	c, ok := d.MatchConjunction(tup(11))
	if !ok || len(c.Preds) != 1 || c.Preds[0].Op != Gt {
		t.Errorf("MatchConjunction = %v, %v", c, ok)
	}
	if _, ok := d.MatchConjunction(tup(5)); ok {
		t.Error("MatchConjunction matched in the gap")
	}
	if NewDNF().Sat(tup(0)) {
		t.Error("empty DNF is unsatisfiable by definition")
	}
}

func TestDNFOr(t *testing.T) {
	a := NewDNF(NewConjunction(NumPred(0, Lt, 0)))
	b := NewDNF(NewConjunction(NumPred(0, Gt, 10)))
	ab := a.Or(b)
	if len(ab.Conjs) != 2 {
		t.Fatalf("Or size = %d", len(ab.Conjs))
	}
	if len(a.Conjs) != 1 || len(b.Conjs) != 1 {
		t.Error("Or mutated operands")
	}
}

func TestDNFImpliesDefinition2(t *testing.T) {
	// ℂ1 = (0≤A<2) ∨ (5≤A<7); ℂ2 = (A≥0 ∧ A<10). Every disjunct of ℂ1
	// implies the single disjunct of ℂ2.
	c1 := NewDNF(
		NewConjunction(NumPred(0, Ge, 0), NumPred(0, Lt, 2)),
		NewConjunction(NumPred(0, Ge, 5), NumPred(0, Lt, 7)),
	)
	c2 := NewDNF(NewConjunction(NumPred(0, Ge, 0), NumPred(0, Lt, 10)))
	if !c1.Implies(c2) {
		t.Error("ℂ1 ⊢ ℂ2 expected")
	}
	if c2.Implies(c1) {
		t.Error("ℂ2 ⊢ ℂ1 unexpected")
	}
}

// Property: DNF implication (Definition 2) is sound w.r.t. satisfaction.
func TestDNFImpliesSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDNF(randomConj(rng), randomConj(rng))
		e := NewDNF(randomConj(rng), randomConj(rng))
		if !d.Implies(e) {
			return true
		}
		for x := -4.0; x <= 4.0; x += 0.5 {
			for y := -4.0; y <= 4.0; y += 0.5 {
				tpl := tup(x, y)
				if d.Sat(tpl) && !e.Sat(tpl) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDNFSimplify(t *testing.T) {
	// The narrow disjunct is subsumed by the wide one.
	wide := NewConjunction(NumPred(0, Ge, 0), NumPred(0, Lt, 10))
	narrow := NewConjunction(NumPred(0, Ge, 2), NumPred(0, Lt, 4))
	contra := NewConjunction(NumPred(0, Gt, 5), NumPred(0, Lt, 3))
	d := NewDNF(wide, narrow, contra).Simplify()
	if len(d.Conjs) != 1 {
		t.Fatalf("Simplify kept %d conjuncts, want 1: %v", len(d.Conjs), d)
	}
	if !d.Conjs[0].Equivalent(wide) {
		t.Error("Simplify kept the wrong disjunct")
	}
}

func TestDNFSimplifyKeepsDistinctBuiltins(t *testing.T) {
	// Same region, different builtins → both must survive (they drive
	// different model translations).
	a := NewConjunction(NumPred(0, Ge, 0))
	b := a.Clone()
	b.Builtin = b.Builtin.WithYShift(3)
	d := NewDNF(a, b).Simplify()
	if len(d.Conjs) != 2 {
		t.Fatalf("Simplify dropped a conjunct with distinct builtin: %v", d)
	}
}

func TestDNFSimplifyEquivalentDuplicates(t *testing.T) {
	a := NewConjunction(NumPred(0, Ge, 2))
	b := NewConjunction(NumPred(0, Ge, 2), NumPred(0, Ge, 1))
	d := NewDNF(a, b).Simplify()
	if len(d.Conjs) != 1 {
		t.Fatalf("Simplify kept %d equivalent duplicates", len(d.Conjs))
	}
}

// Property: Simplify preserves DNF semantics on a grid.
func TestDNFSimplifyPreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDNF(randomConj(rng), randomConj(rng), randomConj(rng))
		s := d.Simplify()
		for x := -4.0; x <= 4.0; x += 0.5 {
			for y := -4.0; y <= 4.0; y += 0.5 {
				tpl := tup(x, y)
				if d.Sat(tpl) != s.Sat(tpl) {
					return false
				}
			}
		}
		return len(s.Conjs) <= len(d.Conjs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeCollapsesBounds(t *testing.T) {
	c := NewConjunction(
		NumPred(0, Gt, 1), NumPred(0, Gt, 5), NumPred(0, Le, 100), NumPred(0, Le, 40),
		StrPred(1, "a"), StrPred(1, "a"),
	)
	c.Builtin = c.Builtin.WithYShift(3)
	n := c.Normalize()
	if len(n.Preds) != 3 { // A0>5, A0<=40, A1=a
		t.Fatalf("normalized to %d predicates (%v), want 3", len(n.Preds), n)
	}
	if n.Builtin.YShift != 3 {
		t.Error("Normalize dropped the builtin")
	}
	if !n.Equivalent(c) {
		t.Error("Normalize changed semantics")
	}
}

func TestNormalizePointInterval(t *testing.T) {
	c := NewConjunction(NumPred(0, Ge, 5), NumPred(0, Le, 5))
	n := c.Normalize()
	if len(n.Preds) != 1 || n.Preds[0].Op != Eq || n.Preds[0].Num != 5 {
		t.Fatalf("point interval normalized to %v, want A0=5", n)
	}
}

func TestNormalizeUnsatisfiableUnchanged(t *testing.T) {
	c := NewConjunction(NumPred(0, Gt, 5), NumPred(0, Lt, 3))
	n := c.Normalize()
	if len(n.Preds) != 2 {
		t.Error("unsatisfiable conjunction should be returned unchanged")
	}
}

// Property: Normalize preserves satisfaction on a grid.
func TestNormalizePreservesSat(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomConj(rng)
		n := c.Normalize()
		for x := -4.0; x <= 4.0; x += 0.25 {
			for y := -4.0; y <= 4.0; y += 0.25 {
				tpl := tup(x, y)
				if c.Sat(tpl) != n.Sat(tpl) {
					return false
				}
			}
		}
		return len(n.Preds) <= len(c.Preds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNumericBounds(t *testing.T) {
	c := NewConjunction(NumPred(0, Gt, 2), NumPred(0, Le, 7))
	lo, hi, ok := c.NumericBounds(0)
	if !ok || lo != 2 || hi != 7 {
		t.Errorf("NumericBounds = %v, %v, %v", lo, hi, ok)
	}
	if _, _, ok := c.NumericBounds(1); ok {
		t.Error("bounds reported for an unconstrained attribute")
	}
	contra := NewConjunction(NumPred(0, Gt, 5), NumPred(0, Lt, 3))
	if _, _, ok := contra.NumericBounds(0); ok {
		t.Error("bounds reported for a contradictory conjunction")
	}
}

func TestStrings(t *testing.T) {
	if got := NewConjunction().String(); got != "⊤" {
		t.Errorf("empty conjunction String = %q", got)
	}
	if got := NewDNF().String(); got != "⊥" {
		t.Errorf("empty DNF String = %q", got)
	}
	c := NewConjunction(NumPred(0, Ge, 1))
	c.Builtin = c.Builtin.WithYShift(2)
	if s := c.String(); !strings.Contains(s, "y=2") || !strings.Contains(s, "A0>=1") {
		t.Errorf("conjunction String = %q", s)
	}
	schema := dataset.MustSchema(dataset.Attribute{Name: "Date", Kind: dataset.Numeric})
	d := NewDNF(NewConjunction(NumPred(0, Lt, 3)))
	if got := d.Format(schema); got != "(Date<3)" {
		t.Errorf("Format = %q", got)
	}
	if got := NewDNF().Format(schema); got != "⊥" {
		t.Errorf("empty DNF Format = %q", got)
	}
	if got := NewConjunction().Format(schema); got != "⊤" {
		t.Errorf("empty conjunction Format = %q", got)
	}
}
