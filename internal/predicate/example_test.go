package predicate_test

import (
	"fmt"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
)

// ExampleParseDNF parses the φ₃ condition of the paper's Example 2 — the
// same migration model applying in two years, the second shifted by
// x = 744 days.
func ExampleParseDNF() {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "Latitude", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Date", Kind: dataset.Numeric},
		dataset.Attribute{Name: "BirdID", Kind: dataset.Categorical},
	)
	cond, err := predicate.ParseDNF(
		"Date>=223 && Date<255 && x[Date]=0 || Date>=953 && Date<985 && x[Date]=744", schema)
	if err != nil {
		panic(err)
	}
	t1 := dataset.Tuple{dataset.Num(56.2), dataset.Num(230), dataset.Str("2.Maria")}
	t2 := dataset.Tuple{dataset.Num(55.8), dataset.Num(960), dataset.Str("2.Maria")}
	t3 := dataset.Tuple{dataset.Num(21.9), dataset.Num(500), dataset.Str("2.Maria")}
	fmt.Println(cond.Sat(t1), cond.Sat(t2), cond.Sat(t3))
	c, _ := cond.MatchConjunction(t2)
	fmt.Println("Δ on Date:", c.Builtin.Shift(1))
	// Output:
	// true true false
	// Δ on Date: 744
}

// ExampleConjunction_Implies shows the Induction-side implication: a refined
// condition implies its base.
func ExampleConjunction_Implies() {
	base := predicate.NewConjunction(predicate.StrPred(0, "IA"))
	refined := base.And(predicate.StrPred(1, "S"))
	fmt.Println(refined.Implies(base), base.Implies(refined))
	// Output: true false
}

// ExampleDNF_Simplify drops subsumed disjuncts.
func ExampleDNF_Simplify() {
	wide := predicate.NewConjunction(
		predicate.NumPred(0, predicate.Ge, 0), predicate.NumPred(0, predicate.Lt, 10))
	narrow := predicate.NewConjunction(
		predicate.NumPred(0, predicate.Ge, 2), predicate.NumPred(0, predicate.Lt, 4))
	d := predicate.NewDNF(wide, narrow).Simplify()
	fmt.Println(len(d.Conjs))
	// Output: 1
}
