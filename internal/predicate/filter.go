package predicate

import "github.com/crrlab/crr/internal/dataset"

// Vectorized condition evaluation over a dataset.ColumnSet. Filter narrows a
// selection vector in one sweep per predicate instead of re-dispatching the
// operator per tuple: interval predicates become branch-light range scans
// over the dense numeric column, categorical equalities become a single
// dictionary lookup followed by a code comparison. The contract is exact
// row-path parity — a row survives Filter iff its tuple satisfies Sat — which
// the package property tests and crrbench -compare assert.

// Filter appends to dst (reset to length 0) the rows of sel whose cells
// satisfy the predicate, preserving order. dst may alias sel: the write
// index never passes the read index, so in-place narrowing is safe. A null
// cell satisfies no predicate, matching Sat.
func (p Predicate) Filter(cs *dataset.ColumnSet, sel []int, dst []int) []int {
	dst = dst[:0]
	if p.Categorical {
		if p.Op != Eq {
			return dst
		}
		code, ok := cs.Code(p.Attr, p.Str)
		if !ok {
			// The constant never occurs in the column; nothing matches.
			return dst
		}
		codes := cs.Codes(p.Attr)
		for _, r := range sel {
			if codes[r] == code {
				dst = append(dst, r)
			}
		}
		return dst
	}
	vals := cs.Float(p.Attr)
	c := p.Num
	if nulls := cs.Nulls(p.Attr); nulls != nil {
		// Column has nulls: a null cell stores its raw Num, so the bitmap
		// check is part of the comparison.
		null := func(r int) bool { return nulls[r>>6]&(1<<(uint(r)&63)) != 0 }
		switch p.Op {
		case Eq:
			for _, r := range sel {
				if vals[r] == c && !null(r) {
					dst = append(dst, r)
				}
			}
		case Gt:
			for _, r := range sel {
				if vals[r] > c && !null(r) {
					dst = append(dst, r)
				}
			}
		case Ge:
			for _, r := range sel {
				if vals[r] >= c && !null(r) {
					dst = append(dst, r)
				}
			}
		case Lt:
			for _, r := range sel {
				if vals[r] < c && !null(r) {
					dst = append(dst, r)
				}
			}
		case Le:
			for _, r := range sel {
				if vals[r] <= c && !null(r) {
					dst = append(dst, r)
				}
			}
		}
		return dst
	}
	switch p.Op {
	case Eq:
		for _, r := range sel {
			if vals[r] == c {
				dst = append(dst, r)
			}
		}
	case Gt:
		for _, r := range sel {
			if vals[r] > c {
				dst = append(dst, r)
			}
		}
	case Ge:
		for _, r := range sel {
			if vals[r] >= c {
				dst = append(dst, r)
			}
		}
	case Lt:
		for _, r := range sel {
			if vals[r] < c {
				dst = append(dst, r)
			}
		}
	case Le:
		for _, r := range sel {
			if vals[r] <= c {
				dst = append(dst, r)
			}
		}
	}
	return dst
}

// FilterRange appends to dst (reset to length 0) the rows in [lo, hi) whose
// cells satisfy the predicate, in row order — the chunked-scan primitive:
// out-of-core consumers sweep a mapped lane one chunk at a time without
// materializing a full-relation selection vector first. For any split of
// [0, rows) into chunks, concatenating the FilterRange results equals
// Filter over the identity selection (asserted by the package tests), so
// predicates evaluate identically across chunk boundaries.
func (p Predicate) FilterRange(cs *dataset.ColumnSet, lo, hi int, dst []int) []int {
	dst = dst[:0]
	if lo < 0 {
		lo = 0
	}
	if hi > cs.Len() {
		hi = cs.Len()
	}
	if p.Categorical {
		if p.Op != Eq {
			return dst
		}
		code, ok := cs.Code(p.Attr, p.Str)
		if !ok {
			return dst
		}
		codes := cs.Codes(p.Attr)
		for r := lo; r < hi; r++ {
			if codes[r] == code {
				dst = append(dst, r)
			}
		}
		return dst
	}
	vals := cs.Float(p.Attr)
	c := p.Num
	if nulls := cs.Nulls(p.Attr); nulls != nil {
		null := func(r int) bool { return nulls[r>>6]&(1<<(uint(r)&63)) != 0 }
		switch p.Op {
		case Eq:
			for r := lo; r < hi; r++ {
				if vals[r] == c && !null(r) {
					dst = append(dst, r)
				}
			}
		case Gt:
			for r := lo; r < hi; r++ {
				if vals[r] > c && !null(r) {
					dst = append(dst, r)
				}
			}
		case Ge:
			for r := lo; r < hi; r++ {
				if vals[r] >= c && !null(r) {
					dst = append(dst, r)
				}
			}
		case Lt:
			for r := lo; r < hi; r++ {
				if vals[r] < c && !null(r) {
					dst = append(dst, r)
				}
			}
		case Le:
			for r := lo; r < hi; r++ {
				if vals[r] <= c && !null(r) {
					dst = append(dst, r)
				}
			}
		}
		return dst
	}
	switch p.Op {
	case Eq:
		for r := lo; r < hi; r++ {
			if vals[r] == c {
				dst = append(dst, r)
			}
		}
	case Gt:
		for r := lo; r < hi; r++ {
			if vals[r] > c {
				dst = append(dst, r)
			}
		}
	case Ge:
		for r := lo; r < hi; r++ {
			if vals[r] >= c {
				dst = append(dst, r)
			}
		}
	case Lt:
		for r := lo; r < hi; r++ {
			if vals[r] < c {
				dst = append(dst, r)
			}
		}
	case Le:
		for r := lo; r < hi; r++ {
			if vals[r] <= c {
				dst = append(dst, r)
			}
		}
	}
	return dst
}

// Filter appends to dst (reset to length 0) the rows of sel satisfying every
// predicate of the conjunction, preserving order: the first predicate
// narrows sel into dst, each further predicate narrows dst in place — one
// sweep per predicate, no per-tuple operator dispatch. The empty conjunction
// keeps every row (Sat parity). dst must not alias sel.
func (c Conjunction) Filter(cs *dataset.ColumnSet, sel []int, dst []int) []int {
	if len(c.Preds) == 0 {
		return append(dst[:0], sel...)
	}
	dst = c.Preds[0].Filter(cs, sel, dst)
	for _, p := range c.Preds[1:] {
		if len(dst) == 0 {
			return dst
		}
		dst = p.Filter(cs, dst, dst)
	}
	return dst
}

// FilterRange appends to dst (reset to length 0) the rows in [lo, hi)
// satisfying every predicate of the conjunction, in row order: the first
// predicate range-scans the chunk, each further predicate narrows the
// surviving rows in place. Concatenating per-chunk results over a partition
// of [0, rows) equals Filter over the identity selection.
func (c Conjunction) FilterRange(cs *dataset.ColumnSet, lo, hi int, dst []int) []int {
	if len(c.Preds) == 0 {
		dst = dst[:0]
		if lo < 0 {
			lo = 0
		}
		if hi > cs.Len() {
			hi = cs.Len()
		}
		for r := lo; r < hi; r++ {
			dst = append(dst, r)
		}
		return dst
	}
	dst = c.Preds[0].FilterRange(cs, lo, hi, dst)
	for _, p := range c.Preds[1:] {
		if len(dst) == 0 {
			return dst
		}
		dst = p.Filter(cs, dst, dst)
	}
	return dst
}

// FilterView narrows a view by the conjunction, returning a fresh selection.
func (c Conjunction) FilterView(v *dataset.View) *dataset.View {
	return v.Narrow(c.Filter(v.Cols, v.Sel, nil))
}

// Filter appends to dst (reset to length 0) the rows of sel satisfied by at
// least one conjunction of the DNF, preserving sel's order (Sat parity: the
// empty DNF keeps nothing). dst must not alias sel.
func (d DNF) Filter(cs *dataset.ColumnSet, sel []int, dst []int) []int {
	dst = dst[:0]
	switch len(d.Conjs) {
	case 0:
		return dst
	case 1:
		return d.Conjs[0].Filter(cs, sel, dst)
	}
	// Mark rows hit by any disjunct, then compact sel in order.
	marks := make([]uint64, (cs.Len()+63)/64)
	var buf []int
	for _, c := range d.Conjs {
		buf = c.Filter(cs, sel, buf)
		for _, r := range buf {
			marks[r>>6] |= 1 << (uint(r) & 63)
		}
	}
	for _, r := range sel {
		if marks[r>>6]&(1<<(uint(r)&63)) != 0 {
			dst = append(dst, r)
		}
	}
	return dst
}
