package predicate

import (
	"testing"

	"github.com/crrlab/crr/internal/dataset"
)

func genRelation() *dataset.Relation {
	s := dataset.MustSchema(
		dataset.Attribute{Name: "X", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Tag", Kind: dataset.Categorical},
	)
	r := dataset.NewRelation(s)
	tags := []string{"a", "b", "c"}
	for i := 0; i < 100; i++ {
		r.MustAppend(dataset.Tuple{dataset.Num(float64(i)), dataset.Str(tags[i%3])})
	}
	return r
}

func TestGenerateBinary(t *testing.T) {
	r := genRelation()
	preds := Generate(r, []int{0}, GeneratorConfig{Kind: Binary, Size: 8})
	if len(preds) != 8 {
		t.Fatalf("got %d predicates, want 8", len(preds))
	}
	// Pairs {>c, ≤c} on the same constants.
	for i := 0; i < len(preds); i += 2 {
		if preds[i].Num != preds[i+1].Num {
			t.Errorf("pair %d constants differ: %v vs %v", i/2, preds[i].Num, preds[i+1].Num)
		}
		if preds[i].Op != Gt || preds[i+1].Op != Le {
			t.Errorf("pair %d operators: %v, %v", i/2, preds[i].Op, preds[i+1].Op)
		}
	}
	// The median must be among the binary cuts (level-1 bisection).
	found := false
	for _, p := range preds {
		if p.Num == 50 {
			found = true
		}
	}
	if !found {
		t.Error("median 50 missing from binary cuts")
	}
}

func TestGenerateCategorical(t *testing.T) {
	r := genRelation()
	preds := Generate(r, []int{1}, GeneratorConfig{Kind: Binary, Size: 8})
	if len(preds) != 3 {
		t.Fatalf("got %d categorical predicates, want 3", len(preds))
	}
	for _, p := range preds {
		if !p.Categorical || p.Op != Eq {
			t.Errorf("bad categorical predicate %v", p)
		}
	}
}

func TestGenerateRandomDeterministic(t *testing.T) {
	r := genRelation()
	a := Generate(r, []int{0}, GeneratorConfig{Kind: Random, Size: 10, Seed: 7})
	b := Generate(r, []int{0}, GeneratorConfig{Kind: Random, Size: 10, Seed: 7})
	if len(a) != len(b) {
		t.Fatal("random generation not deterministic in size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random generation not deterministic for fixed seed")
		}
	}
	// Constants must come from the observed domain.
	for _, p := range a {
		if p.Num < 0 || p.Num > 99 {
			t.Errorf("random cut %v outside domain", p.Num)
		}
	}
}

func TestGenerateExpertUsesCuts(t *testing.T) {
	r := genRelation()
	preds := Generate(r, []int{0}, GeneratorConfig{
		Kind:       Expert,
		Size:       4,
		ExpertCuts: map[int][]float64{0: {30, 60}},
	})
	if len(preds) != 4 {
		t.Fatalf("got %d predicates, want 4", len(preds))
	}
	constants := map[float64]bool{}
	for _, p := range preds {
		constants[p.Num] = true
	}
	if !constants[30] || !constants[60] {
		t.Errorf("expert cuts missing: %v", constants)
	}
}

func TestGenerateExpertTopsUpWithBinary(t *testing.T) {
	r := genRelation()
	preds := Generate(r, []int{0}, GeneratorConfig{
		Kind:       Expert,
		Size:       8,
		ExpertCuts: map[int][]float64{0: {30}},
	})
	if len(preds) != 8 {
		t.Fatalf("got %d predicates, want 8 (expert cut + binary top-up)", len(preds))
	}
}

func TestGenerateSkipsDegenerate(t *testing.T) {
	s := dataset.MustSchema(dataset.Attribute{Name: "X", Kind: dataset.Numeric})
	r := dataset.NewRelation(s)
	r.MustAppend(dataset.Tuple{dataset.Num(1)}) // single-value domain
	if preds := Generate(r, []int{0}, GeneratorConfig{Kind: Binary, Size: 4}); len(preds) != 0 {
		t.Errorf("degenerate domain yielded predicates: %v", preds)
	}
}

func TestBinaryCutsDedup(t *testing.T) {
	// A tiny domain forces repeated quantile values; the generator must
	// deduplicate and never loop forever.
	r := dataset.NewRelation(dataset.MustSchema(dataset.Attribute{Name: "X", Kind: dataset.Numeric}))
	r.MustAppend(dataset.Tuple{dataset.Num(0)})
	r.MustAppend(dataset.Tuple{dataset.Num(1)})
	preds := Generate(r, []int{0}, GeneratorConfig{Kind: Binary, Size: 16})
	seen := map[float64]int{}
	for _, p := range preds {
		seen[p.Num]++
	}
	for c, n := range seen {
		if n > 2 {
			t.Errorf("cut %v appears %d times, want ≤2 (one > one ≤)", c, n)
		}
	}
}

func TestGeneratorKindString(t *testing.T) {
	if Binary.String() != "binary" || Random.String() != "random" || Expert.String() != "expert" {
		t.Error("GeneratorKind.String mismatch")
	}
	if GeneratorKind(9).String() != "unknown" {
		t.Error("unknown kind string")
	}
}
