package predicate

import (
	"math"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
)

// Implication must never be derived from NaN constants, and conjunctions
// carrying a NaN threshold are unsatisfiable — they must not be simplified
// into broader (or universal) conditions.

func TestPredicateImpliesEdgeCases(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		p, q Predicate
		want bool
	}{
		{"gt-implies-gt", NumPred(0, Gt, 5), NumPred(0, Gt, 3), true},
		{"gt-not-implied", NumPred(0, Gt, 3), NumPred(0, Gt, 5), false},
		{"eq-implies-le", NumPred(0, Eq, 4), NumPred(0, Le, 4), true},
		{"nan-left", NumPred(0, Gt, nan), NumPred(0, Gt, 3), false},
		{"nan-right", NumPred(0, Gt, 5), NumPred(0, Gt, nan), false},
		{"nan-both", NumPred(0, Le, nan), NumPred(0, Le, nan), false},
		{"nan-eq", NumPred(0, Eq, nan), NumPred(0, Le, nan), false},
		{"inf-still-ordered", NumPred(0, Gt, math.Inf(1)), NumPred(0, Gt, 3), true},
		{"cross-attr", NumPred(0, Gt, 5), NumPred(1, Gt, 3), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Implies(tc.q); got != tc.want {
				t.Errorf("(%v).Implies(%v) = %v, want %v", tc.p, tc.q, got, tc.want)
			}
		})
	}
}

func TestConjunctionImpliesEdgeCases(t *testing.T) {
	nan := math.NaN()
	top := NewConjunction()
	single := NewConjunction(NumPred(0, Ge, 5), NumPred(0, Le, 5)) // the point x = 5
	nanConj := NewConjunction(NumPred(0, Gt, nan))
	cases := []struct {
		name string
		c, d Conjunction
		want bool
	}{
		{"anything-implies-top", single, top, true},
		{"top-implies-top", top, top, true},
		{"top-implies-nothing-else", top, NewConjunction(NumPred(0, Gt, 0)), false},
		{"single-point-implies-wider", single, NewConjunction(NumPred(0, Le, 7)), true},
		{"single-point-implies-bound", single, NewConjunction(NumPred(0, Ge, 5)), true},
		{"wider-not-implied", NewConjunction(NumPred(0, Le, 7)), single, false},
		{"nan-implies-nothing", nanConj, NewConjunction(NumPred(0, Gt, 0)), false},
		{"nan-not-even-top", nanConj, top, false},
		{"nothing-implies-nan", NewConjunction(NumPred(0, Gt, 0)), nanConj, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.c.Implies(tc.d); got != tc.want {
				t.Errorf("(%v).Implies(%v) = %v, want %v", tc.c, tc.d, got, tc.want)
			}
		})
	}
}

// TestNormalizeNaNStaysUnsatisfiable is the regression for the summarize NaN
// bug: a NaN threshold left the numeric interval untouched, so Normalize
// generalized the (unsatisfiable) conjunction into the predicates that were
// left — or ⊤ — silently widening the rule's coverage.
func TestNormalizeNaNStaysUnsatisfiable(t *testing.T) {
	nan := math.NaN()
	for _, op := range []Op{Gt, Ge, Lt, Le, Eq} {
		c := NewConjunction(NumPred(0, op, nan), NumPred(1, Ge, 3))
		if !c.Unsatisfiable() {
			t.Errorf("op %v: NaN conjunction reported satisfiable", op)
		}
		n := c.Normalize()
		tp := dataset.Tuple{dataset.Num(10), dataset.Num(10)}
		if n.Sat(tp) {
			t.Errorf("op %v: Normalize widened a NaN conjunction to cover %v", op, tp)
		}
	}

	// Sanity: an ordinary contradiction is also unsatisfiable, and a clean
	// single-point interval survives normalization.
	contra := NewConjunction(NumPred(0, Gt, 5), NumPred(0, Lt, 5))
	if !contra.Unsatisfiable() {
		t.Error("x>5 ∧ x<5 reported satisfiable")
	}
	point := NewConjunction(NumPred(0, Ge, 5), NumPred(0, Le, 5))
	if point.Unsatisfiable() {
		t.Error("x≥5 ∧ x≤5 reported unsatisfiable")
	}
	if !point.Normalize().Sat(dataset.Tuple{dataset.Num(5), dataset.Num(0)}) {
		t.Error("normalized single-point interval no longer covers its point")
	}
}

// TestDNFImpliesNaN: DNF-level implication must also refuse NaN-poisoned
// disjuncts rather than deriving coverage from them.
func TestDNFImpliesNaN(t *testing.T) {
	nan := math.NaN()
	clean := NewDNF(NewConjunction(NumPred(0, Ge, 0), NumPred(0, Le, 10)))
	wide := NewDNF(NewConjunction(NumPred(0, Ge, -5), NumPred(0, Le, 15)))
	poisoned := NewDNF(NewConjunction(NumPred(0, Le, nan)))
	if !clean.Implies(wide) {
		t.Error("refinement not detected on clean DNFs")
	}
	if poisoned.Implies(wide) {
		t.Error("NaN disjunct implied a clean DNF")
	}
	if clean.Implies(poisoned) {
		t.Error("clean DNF implied a NaN disjunct")
	}
}
