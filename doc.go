// Package crr reproduces "Conditional Regression Rules" (Kang, Song, Wang;
// ICDE 2022): conditional regression rules φ : (f, ρ, ℂ) pairing a regression
// model with a max-bias bound and a DNF condition, five sound inference rules
// (Reflexivity, Induction, Fusion, Generalization, Translation), a discovery
// algorithm with model sharing (Algorithm 1), and a compaction algorithm
// driven by the inference rules (Algorithm 2).
//
// The implementation lives under internal/: see internal/core for the CRR
// machinery, internal/predicate for the condition language, internal/regress
// for the model families, internal/baseline for the paper's comparison
// methods, and internal/experiments for every table and figure of the
// evaluation. The examples/ directory holds runnable entry points, and
// bench_test.go in this directory regenerates each paper artifact as a Go
// benchmark.
package crr
