# Development targets for the CRR reproduction.

GO ?= go

.PHONY: all build test race race-core serve bench bench-full bench-core bench-serve bench-stream bench-cluster bench-ooc fuzz verify verify-quick vet fmt experiments examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The CI race job: discovery/compaction engines, induction strategies, the
# out-of-core column store, telemetry, the serving subsystem (hot reload +
# drain + generation CAS) and the stream maintainer under the detector.
race-core:
	$(GO) vet ./...
	$(GO) test -race ./internal/core/... ./internal/induction/... ./internal/colstore/... ./internal/telemetry/... ./internal/experiments/... ./internal/serve/... ./internal/stream/... ./internal/registry/... ./internal/cluster/... ./internal/router/...

# Serve a discovered artifact over HTTP (see docs/TUTORIAL.md §7):
#   make serve RULES=rules.json [ADDR=:8080]
RULES ?= rules.json
ADDR ?= :8080
serve:
	$(GO) run ./cmd/crrserve -rules $(RULES) -addr $(ADDR)

# Every paper table/figure as a Go benchmark, at 0.1 scale.
bench:
	$(GO) test -bench=. -benchmem .

# Paper-scale benchmarks (minutes).
bench-full:
	CRR_BENCH_SCALE=1 $(GO) test -bench=. -benchmem -timeout 60m .

# Core micro-benchmarks: discovery, compaction, prediction index.
bench-core:
	$(GO) test -bench=. -benchmem ./internal/core/

# Serving throughput: /v1/predict over JSON vs binary columnar, handler
# stack (go test) and SDK-through-TCP (crrbench -serve). BENCH_wire.json
# records the curated numbers.
bench-serve:
	$(GO) test -bench 'BenchmarkServeBatchPredict' -benchmem -benchtime=2s ./internal/serve/
	$(GO) run ./cmd/crrbench -serve

# Incremental stream maintenance vs full rediscovery, per 1k appended rows
# on the canonical Electricity workload. BENCH_stream.json records the
# curated numbers.
bench-stream:
	$(GO) test -bench 'BenchmarkStream' -benchmem -benchtime=10x ./internal/stream/

# Router overhead: the same 1k-row binary batch predict through the SDK,
# direct-to-node vs through crrrouter. BENCH_cluster.json records the
# curated numbers (acceptance: routed <= 1.15x direct ns/op).
bench-cluster:
	$(GO) test -bench 'BatchPredictBinary' -benchmem -benchtime=3s ./internal/router/

# Out-of-core store scaling: chunked build + mmap-backed discovery at
# 1M/3M/10M rows. BENCH_ooc.json records the curated numbers (acceptance:
# near-linear ns/row, build peak heap flat across sizes).
bench-ooc:
	$(GO) run ./cmd/crrbench -ooc -out BENCH_ooc.json

fuzz:
	$(GO) test ./internal/dataset/ -fuzz FuzzReadCSV -fuzztime 30s
	$(GO) test ./internal/predicate/ -fuzz FuzzParseDNF -fuzztime 30s
	$(GO) test ./internal/predicate/ -fuzz FuzzImplies -fuzztime 30s
	$(GO) test ./internal/core/ -fuzz FuzzCompactSoundness -fuzztime 30s
	$(GO) test ./internal/wire/ -fuzz FuzzWireDecode -fuzztime 30s
	$(GO) test ./internal/colstore/ -fuzz FuzzColstoreOpen -fuzztime 30s
	$(GO) test ./internal/colstore/ -fuzz FuzzDictDecode -fuzztime 30s
	$(GO) test ./internal/colstore/ -fuzz FuzzHeaderDecode -fuzztime 30s

# Differential correctness harness: cross-engine oracles, inference
# soundness, metamorphic invariants over every built-in dataset.
verify:
	$(GO) run ./cmd/crrverify

verify-quick:
	$(GO) run ./cmd/crrverify -quick

vet:
	$(GO) vet ./...
	gofmt -l . | (! grep .) || (echo "gofmt needed" && exit 1)

fmt:
	gofmt -w .

# Regenerate every table and figure of the paper (EXPERIMENTS.md source).
experiments:
	$(GO) run ./cmd/crrbench -exp all | tee results_full.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/birdmigration
	$(GO) run ./examples/taxaudit
	$(GO) run ./examples/imputation
	$(GO) run ./examples/powermonitor

clean:
	$(GO) clean -testcache
