// Command crrrouter fronts a fleet of crrserve nodes as a stateless router:
// it hashes each request's tenant onto the consistent-hash ring, forwards
// the request to the owning node without touching the body (JSON and binary
// columnar both pass through byte-for-byte), and fails over to the next
// ring replica when a node dies mid-request. Per-tenant token-bucket quotas
// and in-flight caps keep one tenant from starving the fleet.
//
// Usage:
//
//	crrserve  -registry /srv/reg-a -addr :8081 &
//	crrserve  -registry /srv/reg-b -addr :8082 &
//	crrrouter -addr :8080 -node n1=http://localhost:8081 -node n2=http://localhost:8082
//
//	curl -s localhost:8080/t/acme/v1/predict -d '{"tuple":{"Salary":82000,"State":"IA"}}'
//	curl -s -H 'X-CRR-Tenant: acme' localhost:8080/v1/predict -d '...'
//	curl -s localhost:8080/v1/shardmap     # the ring, for direct-routing SDKs
//	curl -s localhost:8080/healthz
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/crrlab/crr/internal/cluster"
	"github.com/crrlab/crr/internal/router"
	"github.com/crrlab/crr/internal/telemetry"
)

// nodeList collects repeated -node flags.
type nodeList []string

func (n *nodeList) String() string     { return strings.Join(*n, ",") }
func (n *nodeList) Set(v string) error { *n = append(*n, v); return nil }

func main() {
	var nodes nodeList
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		replicas   = flag.Int("replicas", 2, "ring candidates per tenant (primary + failover replicas)")
		vnodes     = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per physical node")
		probeEvery = flag.Duration("probe-interval", 2*time.Second, "liveness probe period")
		reqTimeout = flag.Duration("timeout", 30*time.Second, "per-request forwarding deadline (all failover attempts)")
		quotaRPS   = flag.Float64("quota-rps", 0, "per-tenant token-bucket rate, requests/second (0 = unlimited)")
		quotaBurst = flag.Int("quota-burst", 0, "per-tenant bucket depth (default ceil(quota-rps))")
		tenantCap  = flag.Int("tenant-max-inflight", 0, "per-tenant concurrent-forward cap (0 = unlimited)")
		quiet      = flag.Bool("quiet", false, "suppress lifecycle log lines")
	)
	flag.Var(&nodes, "node", "serve node as name=url or url (repeatable; required)")
	flag.Parse()
	if err := run(nodes, *addr, *replicas, *vnodes, *probeEvery, *reqTimeout,
		*quotaRPS, *quotaBurst, *tenantCap, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "crrrouter:", err)
		os.Exit(1)
	}
}

func run(nodes []string, addr string, replicas, vnodes int, probeEvery, reqTimeout time.Duration,
	quotaRPS float64, quotaBurst, tenantCap int, quiet bool) error {
	if len(nodes) == 0 {
		return fmt.Errorf("at least one -node is required (see -h)")
	}
	logf := log.Printf
	if quiet {
		logf = func(string, ...any) {}
	}
	specs := make([]cluster.NodeSpec, 0, len(nodes))
	for _, n := range nodes {
		spec, err := cluster.ParseNodeSpec(n)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
	}
	// One registry feeds both the cluster.* and router.* metrics, so
	// /metrics on the router shows the whole picture.
	reg := telemetry.New()
	tracker, err := cluster.NewTracker(specs, cluster.TrackerConfig{
		ProbeInterval: probeEvery,
		VNodes:        vnodes,
		Replicas:      replicas,
		Registry:      reg,
		Logf:          logf,
	})
	if err != nil {
		return err
	}
	rtr, err := router.New(router.Config{
		Tracker:           tracker,
		RequestTimeout:    reqTimeout,
		QuotaRPS:          quotaRPS,
		QuotaBurst:        quotaBurst,
		TenantMaxInFlight: tenantCap,
		Registry:          reg,
		Logf:              logf,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Probe immediately so the first forwards already know the fleet state,
	// then keep probing in the background.
	tracker.ProbeOnce(ctx)
	go tracker.Run(ctx)

	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logf("crrrouter: listening on %s, %d node(s)", l.Addr(), len(specs))
	hs := &http.Server{Handler: rtr.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return err
	}
	logf("crrrouter: clean exit")
	return nil
}
