// Command crrserve serves a discovered rule set over HTTP: predictions,
// integrity checking and imputation against the artifact written by
// crrdiscover -save, with production behaviors built in — per-request
// deadlines, 429 load shedding at a configurable in-flight limit, graceful
// drain on SIGINT/SIGTERM, and zero-downtime artifact hot reload on SIGHUP
// or POST /v1/reload.
//
// Usage:
//
//	crrdiscover -input data.csv -y Tax -x Salary -compact -save rules.json
//	crrserve    -rules rules.json -addr :8080
//	crrserve    -registry /var/lib/crr/registry -addr :8080   # multi-tenant node
//
//	curl -s localhost:8080/v1/predict -d '{"tuple":{"Salary":82000,"State":"IA"}}'
//	curl -s localhost:8080/v1/check   -d '{"tuples":[{"Salary":82000,"State":"IA","Tax":3050}]}'
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics
//	kill -HUP $(pidof crrserve)   # re-read rules.json without dropping traffic
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/crrlab/crr/internal/registry"
	"github.com/crrlab/crr/internal/serve"
	"github.com/crrlab/crr/internal/telemetry"
)

func main() {
	var (
		rules       = flag.String("rules", "", "rule-set artifact to serve for the default tenant (crrdiscover -save)")
		registryDir = flag.String("registry", "", "versioned artifact-registry directory (multi-tenant; enables /v1/registry)")
		addr        = flag.String("addr", ":8080", "listen address")
		inflight    = flag.Int("max-inflight", 64, "concurrent data-plane requests before shedding with 429")
		reqTimeout  = flag.Duration("timeout", 30*time.Second, "per-request processing deadline")
		drain       = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain budget for in-flight requests")
		drainNotice = flag.Duration("drain-notice", 2*time.Second, "time /healthz reports draining before the listener closes (lets routers re-route)")
		quiet       = flag.Bool("quiet", false, "suppress lifecycle log lines")
	)
	flag.Parse()
	if err := run(*rules, *registryDir, *addr, *inflight, *reqTimeout, *drain, *drainNotice, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "crrserve:", err)
		os.Exit(1)
	}
}

func run(rules, registryDir, addr string, inflight int, reqTimeout, drain, drainNotice time.Duration, quiet bool) error {
	if rules == "" && registryDir == "" {
		return fmt.Errorf("-rules or -registry is required (see -h)")
	}
	logf := log.Printf
	if quiet {
		logf = func(string, ...any) {}
	}
	// One telemetry registry for the whole node: the artifact store's
	// registry.* counters surface on the same /metrics page as serve.*.
	reg := telemetry.New()
	var store *registry.Registry
	if registryDir != "" {
		var err error
		store, err = registry.Open(registryDir, reg)
		if err != nil {
			return err
		}
	}
	srv, err := serve.New(serve.Config{
		RulesPath:      rules,
		Store:          store,
		MaxInFlight:    inflight,
		RequestTimeout: reqTimeout,
		Registry:       reg,
		Logf:           logf,
	})
	if err != nil {
		return err
	}

	// SIGHUP hot-reloads the artifact; SIGINT/SIGTERM drain and exit.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if err := srv.Reload(); err != nil {
				logf("crrserve: reload failed, keeping current rules: %v", err)
			}
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(addr) }()

	select {
	case err := <-errc:
		return err // listener failed before any shutdown request
	case <-ctx.Done():
	}
	stop() // a second signal now kills immediately rather than draining

	// Announce the drain before closing the listener: routers probing
	// /healthz see "draining", pull this node out of the assignment ring,
	// and stop sending new work — then the listener can close without
	// racing in-flight forwards.
	srv.StartDrain()
	if drainNotice > 0 {
		time.Sleep(drainNotice)
	}

	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return err
	}
	logf("crrserve: clean exit")
	return nil
}
