package main

import (
	"context"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

func TestRunFlagValidation(t *testing.T) {
	if err := run("", "", ":0", 4, time.Second, time.Second, 0, true); err == nil {
		t.Error("missing -rules accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "absent.json"), "", ":0", 4, time.Second, time.Second, 0, true); err == nil {
		t.Error("nonexistent artifact accepted")
	}
}

// TestRunLifecycle drives the real entrypoint: load an artifact, serve on an
// ephemeral port, hot-reload on SIGHUP, then exit cleanly on SIGTERM.
func TestRunLifecycle(t *testing.T) {
	rel := dataset.GenerateTax(dataset.TaxConfig{Rows: 400, Noise: 0.5, Seed: 4})
	preds := predicate.Generate(rel, []int{rel.Schema.MustIndex("State")}, predicate.GeneratorConfig{})
	res, err := core.Discover(context.Background(), rel, core.WithConfig(core.DiscoverConfig{
		XAttrs:  []int{rel.Schema.MustIndex("Salary")},
		YAttr:   rel.Schema.MustIndex("Tax"),
		RhoM:    60,
		Preds:   preds,
		Trainer: regress.LinearTrainer{},
	}))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rules.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.WriteRuleSet(f, res.Rules); err != nil {
		t.Fatal(err)
	}
	f.Close()

	done := make(chan error, 1)
	go func() {
		done <- run(path, "", "127.0.0.1:0", 4, time.Second, 5*time.Second, 0, true)
	}()
	time.Sleep(200 * time.Millisecond)

	// SIGHUP must reload, not terminate.
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("run exited on SIGHUP: %v", err)
	default:
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want clean exit", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
}
