// Command crrclient exercises a crrserve instance through the public Go SDK
// (pkg/client). It exists for smoke tests and operational spot checks: load
// a CSV, run one data-plane operation, print a summary — and, with -diff,
// run it over BOTH wire formats (JSON and binary columnar) and fail unless
// the answers are bitwise identical.
//
// Usage:
//
//	crrclient -url http://localhost:8080 -op rules
//	crrclient -url http://localhost:8080 -op predict -input batch.csv -explain
//	crrclient -url http://localhost:8080 -op predict -input batch.csv -diff
//	crrclient -url http://localhost:8080 -op impute -input gaps.csv -fallback
//	crrclient -url http://localhost:8090 -tenant acme -op predict -input batch.csv
//
// Exit status is 1 on -diff divergence, 2 on errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/crrlab/crr/internal/cliutil"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/pkg/client"
)

func main() {
	var (
		url      = flag.String("url", "", "crrserve base URL (required)")
		op       = flag.String("op", "predict", "operation: predict, check, impute, rules")
		input    = flag.String("input", "", "CSV batch (required for predict/check/impute)")
		format   = flag.String("format", "auto", "wire format: auto, json, binary")
		explain  = flag.Bool("explain", false, "request per-tuple rule IDs (predict)")
		column   = flag.String("column", "", "imputation target column (impute; default: server's target)")
		fallback = flag.Bool("fallback", false, "fill uncovered cells with the training mean (impute)")
		diff     = flag.Bool("diff", false, "run over both formats and require bitwise-identical answers")
		tenant   = flag.String("tenant", "", "tenant to address (multi-tenant node or crrrouter; default: the server's default tenant)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-call deadline")
	)
	flag.Parse()
	if err := run(*url, *op, *input, *format, *tenant, *explain, *column, *fallback, *diff, *timeout); err != nil {
		if err == errDiverged {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "crrclient:", err)
		os.Exit(2)
	}
}

var errDiverged = fmt.Errorf("formats diverged")

func parseFormat(s string) (client.Format, error) {
	switch s {
	case "auto":
		return client.FormatAuto, nil
	case "json":
		return client.FormatJSON, nil
	case "binary":
		return client.FormatBinary, nil
	default:
		return 0, fmt.Errorf("unknown format %q (auto, json, binary)", s)
	}
}

func run(url, op, input, format, tenant string, explain bool, column string, fallback, diff bool, timeout time.Duration) error {
	if url == "" {
		return fmt.Errorf("-url is required (see -h)")
	}
	f, err := parseFormat(format)
	if err != nil {
		return err
	}
	ctx := context.Background()

	if op == "rules" {
		c := client.New(url, client.WithTimeout(timeout), client.WithTenant(tenant))
		info, err := c.Rules(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d rules, %d models, y=%s, x=%v (loaded %s from %s)\n",
			url, info.Rules, info.Models, info.Y, info.X, info.LoadedAt.Format(time.RFC3339), info.Source)
		return nil
	}

	if input == "" {
		return fmt.Errorf("-input is required for -op %s", op)
	}
	file, err := os.Open(input)
	if err != nil {
		return err
	}
	rel, err := dataset.ReadCSV(file)
	file.Close()
	if err != nil {
		return err
	}
	makeBatch := func() (*client.Batch, error) { return cliutil.ClientBatch(rel) }

	if diff {
		return runDiff(ctx, url, op, makeBatch, tenant, explain, column, fallback, timeout)
	}
	c := client.New(url, client.WithFormat(f), client.WithTimeout(timeout), client.WithTenant(tenant))
	b, err := makeBatch()
	if err != nil {
		return err
	}
	switch op {
	case "predict":
		var opts []client.PredictOption
		if explain {
			opts = append(opts, client.WithExplain())
		}
		res, err := c.Predict(ctx, b, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("predicted %d tuples: %d covered, y=%s\n", len(res.Values), countTrue(res.Covered), res.Y)
	case "check":
		rep, err := c.Check(ctx, b)
		if err != nil {
			return err
		}
		fmt.Printf("checked %d tuples: %d violation(s)\n", rep.Checked, len(rep.Violations))
	case "impute":
		opts := imputeOpts(column, fallback)
		rep, err := c.Impute(ctx, b, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("imputed %d cells (%d uncovered) in column %s\n", rep.Imputed, rep.Failed, rep.Column)
	default:
		return fmt.Errorf("unknown op %q (predict, check, impute, rules)", op)
	}
	return nil
}

func imputeOpts(column string, fallback bool) []client.ImputeOption {
	var opts []client.ImputeOption
	if column != "" {
		opts = append(opts, client.WithColumn(column))
	}
	if fallback {
		opts = append(opts, client.WithFallback())
	}
	return opts
}

// runDiff executes op under both formats and requires bitwise identity.
func runDiff(ctx context.Context, url, op string, makeBatch func() (*client.Batch, error),
	tenant string, explain bool, column string, fallback bool, timeout time.Duration) error {
	js := client.New(url, client.WithFormat(client.FormatJSON), client.WithTimeout(timeout), client.WithTenant(tenant))
	bin := client.New(url, client.WithFormat(client.FormatBinary), client.WithTimeout(timeout), client.WithTenant(tenant))

	switch op {
	case "predict":
		var opts []client.PredictOption
		if explain {
			opts = append(opts, client.WithExplain())
		}
		jb, err := makeBatch()
		if err != nil {
			return err
		}
		jres, err := js.Predict(ctx, jb, opts...)
		if err != nil {
			return fmt.Errorf("json predict: %w", err)
		}
		bb, err := makeBatch()
		if err != nil {
			return err
		}
		bres, err := bin.Predict(ctx, bb, opts...)
		if err != nil {
			return fmt.Errorf("binary predict: %w", err)
		}
		if len(jres.Values) != len(bres.Values) {
			fmt.Fprintf(os.Stderr, "diff: json %d values, binary %d\n", len(jres.Values), len(bres.Values))
			return errDiverged
		}
		for i := range jres.Values {
			if math.Float64bits(jres.Values[i]) != math.Float64bits(bres.Values[i]) ||
				jres.Covered[i] != bres.Covered[i] {
				fmt.Fprintf(os.Stderr, "diff: tuple %d json (%v,%v) binary (%v,%v)\n",
					i, jres.Values[i], jres.Covered[i], bres.Values[i], bres.Covered[i])
				return errDiverged
			}
			if explain && jres.RuleIDs[i] != bres.RuleIDs[i] {
				fmt.Fprintf(os.Stderr, "diff: tuple %d rule id json %d binary %d\n", i, jres.RuleIDs[i], bres.RuleIDs[i])
				return errDiverged
			}
		}
		fmt.Printf("parity ok: %d predictions bitwise identical across json and binary\n", len(jres.Values))
	case "check":
		jb, err := makeBatch()
		if err != nil {
			return err
		}
		jrep, err := js.Check(ctx, jb)
		if err != nil {
			return fmt.Errorf("json check: %w", err)
		}
		bb, err := makeBatch()
		if err != nil {
			return err
		}
		brep, err := bin.Check(ctx, bb)
		if err != nil {
			return fmt.Errorf("binary check: %w", err)
		}
		if jrep.Checked != brep.Checked || len(jrep.Violations) != len(brep.Violations) {
			fmt.Fprintf(os.Stderr, "diff: json %d/%d, binary %d/%d\n",
				jrep.Checked, len(jrep.Violations), brep.Checked, len(brep.Violations))
			return errDiverged
		}
		for i := range jrep.Violations {
			jv, bv := jrep.Violations[i], brep.Violations[i]
			if jv.Tuple != bv.Tuple || jv.Rule != bv.Rule ||
				math.Float64bits(jv.Observed) != math.Float64bits(bv.Observed) ||
				math.Float64bits(jv.Predicted) != math.Float64bits(bv.Predicted) {
				fmt.Fprintf(os.Stderr, "diff: violation %d json %+v binary %+v\n", i, jv, bv)
				return errDiverged
			}
		}
		fmt.Printf("parity ok: %d violations identical across json and binary\n", len(jrep.Violations))
	case "impute":
		opts := imputeOpts(column, fallback)
		jb, err := makeBatch()
		if err != nil {
			return err
		}
		jrep, err := js.Impute(ctx, jb, opts...)
		if err != nil {
			return fmt.Errorf("json impute: %w", err)
		}
		bb, err := makeBatch()
		if err != nil {
			return err
		}
		brep, err := bin.Impute(ctx, bb, opts...)
		if err != nil {
			return fmt.Errorf("binary impute: %w", err)
		}
		if jrep.Imputed != brep.Imputed || jrep.Failed != brep.Failed || len(jrep.Tuples) != len(brep.Tuples) {
			fmt.Fprintf(os.Stderr, "diff: json %d/%d/%d, binary %d/%d/%d\n",
				jrep.Imputed, jrep.Failed, len(jrep.Tuples), brep.Imputed, brep.Failed, len(brep.Tuples))
			return errDiverged
		}
		for i := range jrep.Tuples {
			for k, jv := range jrep.Tuples[i] {
				bv := brep.Tuples[i][k]
				if !valueEqual(jv, bv) {
					fmt.Fprintf(os.Stderr, "diff: tuple %d key %s json %v binary %v\n", i, k, jv, bv)
					return errDiverged
				}
			}
		}
		fmt.Printf("parity ok: %d imputed tuples identical across json and binary\n", len(jrep.Tuples))
	default:
		return fmt.Errorf("-diff supports predict, check and impute, not %q", op)
	}
	return nil
}

func valueEqual(a, b any) bool {
	if af, ok := a.(float64); ok {
		bf, ok := b.(float64)
		return ok && math.Float64bits(af) == math.Float64bits(bf)
	}
	return a == b
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}
