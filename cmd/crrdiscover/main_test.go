package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/crrlab/crr/internal/colstore"
	"github.com/crrlab/crr/internal/dataset"
)

// writeTaxCSV writes a small Tax CSV fixture and returns its path.
func writeTaxCSV(t *testing.T, rows int) string {
	t.Helper()
	cfg := dataset.DefaultTaxConfig()
	cfg.Rows = rows
	rel := dataset.GenerateTax(cfg)
	path := filepath.Join(t.TempDir(), "tax.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, rel); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunDiscoverEndToEnd(t *testing.T) {
	input := writeTaxCSV(t, 800)
	save := filepath.Join(t.TempDir(), "rules.json")
	err := run(context.Background(), runConfig{
		input: input, yName: "Tax", xNames: "Salary", condCols: "State,MaritalStatus",
		rhoM: 60, family: "F1", compact: true, tol: 0.002, workers: 2, save: save,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// The saved rule set must load back.
	if fi, err := os.Stat(save); err != nil || fi.Size() == 0 {
		t.Fatalf("saved rules missing: %v", err)
	}
}

// TestRunPrintsTelemetrySummary asserts the acceptance-criteria output: a
// telemetry line with models trained/shared and conditions expanded, and a
// phases line with per-phase wall time.
func TestRunPrintsTelemetrySummary(t *testing.T) {
	input := writeTaxCSV(t, 600)
	var buf bytes.Buffer
	err := runTo(context.Background(), &buf, runConfig{
		input: input, yName: "Tax", xNames: "Salary", rhoM: 60, family: "F1", compact: true, workers: 1,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"telemetry: ",
		"conditions expanded=",
		"models trained=",
		"models shared=",
		"phases: ",
		"discover=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunTimeout: an immediately expiring -timeout aborts the mine and
// surfaces a context error.
func TestRunTimeout(t *testing.T) {
	input := writeTaxCSV(t, 800)
	err := run(context.Background(), runConfig{
		input: input, yName: "Tax", xNames: "Salary", rhoM: 60, family: "F1",
		workers: 1, timeout: time.Nanosecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestRunDiscoverPrune(t *testing.T) {
	input := writeTaxCSV(t, 600)
	err := run(context.Background(), runConfig{
		input: input, yName: "Tax", xNames: "Salary",
		rhoM: 60, family: "F2", prune: true, workers: 1,
	})
	if err != nil {
		t.Fatalf("run with prune: %v", err)
	}
}

func TestRunDiscoverValidation(t *testing.T) {
	input := writeTaxCSV(t, 100)
	cases := []runConfig{
		{},                           // missing everything
		{input: input, yName: "Tax"}, // missing -x
		{input: input, yName: "Nope", xNames: "Salary", family: "F1", rhoM: 1},                  // unknown y
		{input: input, yName: "Tax", xNames: "Nope", family: "F1", rhoM: 1},                     // unknown x
		{input: input, yName: "Tax", xNames: "Salary", family: "F9", rhoM: 1},                   // unknown family
		{input: input, yName: "Tax", xNames: "Salary", condCols: "Nope", family: "F1", rhoM: 1}, // unknown cond
		{input: "/does/not/exist.csv", yName: "Tax", xNames: "Salary", family: "F1", rhoM: 1},
	}
	for i, rc := range cases {
		rc.workers = 1
		if err := run(context.Background(), rc); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRunDiscoverDefaultCondAttrs(t *testing.T) {
	input := writeTaxCSV(t, 400)
	// No -cond: categorical columns must be picked up automatically.
	err := run(context.Background(), runConfig{
		input: input, yName: "Tax", xNames: "Salary", rhoM: 60, family: "F1", workers: 1,
	})
	if err != nil {
		t.Fatalf("run without -cond: %v", err)
	}
}

// TestRunCorruptCSVDiagnostic: a malformed feed must come back as a typed
// dataset.ErrMalformedCSV through run's error return — the diagnostic main
// prints before exit 1 — never a panic or stack trace.
func TestRunCorruptCSVDiagnostic(t *testing.T) {
	cases := map[string]string{
		"ragged":          "Salary,Tax\n100,5\n200\n",
		"truncated quote": "Salary,Tax\n\"unterminated,5\n",
		"empty":           "",
	}
	for name, body := range cases {
		path := filepath.Join(t.TempDir(), "bad.csv")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		err := run(context.Background(), runConfig{
			input: path, yName: "Tax", xNames: "Salary", rhoM: 60, family: "F1", workers: 1,
		})
		if !errors.Is(err, dataset.ErrMalformedCSV) {
			t.Errorf("%s: err = %v, want ErrMalformedCSV", name, err)
		}
	}
}

// TestRunStoreMode: -store discovery over an on-disk column store must emit
// exactly the rules the CSV path emits on the same data, and the
// tuple-requiring -prune must be rejected up front.
func TestRunStoreMode(t *testing.T) {
	cfg := dataset.DefaultTaxConfig()
	cfg.Rows = 600
	rel := dataset.GenerateTax(cfg)
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "tax.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, rel); err != nil {
		t.Fatal(err)
	}
	f.Close()
	storeDir := filepath.Join(dir, "tax.crrcol")
	if err := colstore.Build(storeDir, rel, 97); err != nil {
		t.Fatal(err)
	}

	base := runConfig{
		yName: "Tax", xNames: "Salary", condCols: "State,MaritalStatus",
		rhoM: 60, family: "F1", workers: 1,
	}
	var csvOut, storeOut bytes.Buffer
	csvRC := base
	csvRC.input = csvPath
	if err := runTo(context.Background(), &csvOut, csvRC); err != nil {
		t.Fatalf("csv run: %v", err)
	}
	storeRC := base
	storeRC.input, storeRC.store = storeDir, true
	if err := runTo(context.Background(), &storeOut, storeRC); err != nil {
		t.Fatalf("store run: %v", err)
	}

	ruleLines := func(out string) []string {
		var rules []string
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "φ") || strings.HasPrefix(line, "discovered ") {
				rules = append(rules, line)
			}
		}
		return rules
	}
	cr, sr := ruleLines(csvOut.String()), ruleLines(storeOut.String())
	if len(cr) == 0 || len(cr) != len(sr) {
		t.Fatalf("rule line count: csv %d, store %d", len(cr), len(sr))
	}
	for i := range cr {
		if cr[i] != sr[i] {
			t.Fatalf("rule line %d diverged:\ncsv:   %s\nstore: %s", i, cr[i], sr[i])
		}
	}

	pruneRC := storeRC
	pruneRC.prune = true
	if err := run(context.Background(), pruneRC); err == nil || !strings.Contains(err.Error(), "-prune") {
		t.Fatalf("-store -prune: err = %v, want a -prune rejection", err)
	}
}

// TestRunStoreModeCorrupt: a damaged store must surface colstore's typed
// corruption error as a diagnostic, not a panic.
func TestRunStoreModeCorrupt(t *testing.T) {
	cfg := dataset.DefaultTaxConfig()
	cfg.Rows = 50
	storeDir := filepath.Join(t.TempDir(), "tax.crrcol")
	if err := colstore.Build(storeDir, dataset.GenerateTax(cfg), 0); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(storeDir, "col0.f64"), 40); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), runConfig{
		input: storeDir, store: true, yName: "Tax", xNames: "Salary",
		rhoM: 60, family: "F1", workers: 1,
	})
	if !errors.Is(err, colstore.ErrCorrupt) {
		t.Fatalf("corrupt store: err = %v, want ErrCorrupt", err)
	}
}

// TestRunDiscoverStrategy drives the -strategy seam end to end: each named
// induction strategy must run the pipeline, emit rules, and (for the
// non-lattice strategies) surface its counters on the induction summary line.
func TestRunDiscoverStrategy(t *testing.T) {
	input := writeTaxCSV(t, 500)
	for _, name := range []string{"lattice", "growprune", "stability"} {
		var buf bytes.Buffer
		err := runTo(context.Background(), &buf, runConfig{
			input: input, yName: "Tax", xNames: "Salary", condCols: "State,MaritalStatus",
			rhoM: 60, family: "F1", workers: 1, strategy: name,
		})
		if err != nil {
			t.Fatalf("-strategy %s: %v", name, err)
		}
		out := buf.String()
		if !strings.Contains(out, "discovered ") {
			t.Errorf("-strategy %s: no discovery summary in output", name)
		}
		if name != "lattice" && !strings.Contains(out, "induction:") {
			t.Errorf("-strategy %s: no induction telemetry line in output:\n%s", name, out)
		}
	}
	err := run(context.Background(), runConfig{
		input: input, yName: "Tax", xNames: "Salary", rhoM: 60, family: "F1",
		workers: 1, strategy: "nope",
	})
	if err == nil {
		t.Fatal("unknown -strategy accepted")
	}
}
