package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/crrlab/crr/internal/dataset"
)

// writeTaxCSV writes a small Tax CSV fixture and returns its path.
func writeTaxCSV(t *testing.T, rows int) string {
	t.Helper()
	cfg := dataset.DefaultTaxConfig()
	cfg.Rows = rows
	rel := dataset.GenerateTax(cfg)
	path := filepath.Join(t.TempDir(), "tax.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, rel); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunDiscoverEndToEnd(t *testing.T) {
	input := writeTaxCSV(t, 800)
	save := filepath.Join(t.TempDir(), "rules.json")
	err := run(context.Background(), runConfig{
		input: input, yName: "Tax", xNames: "Salary", condCols: "State,MaritalStatus",
		rhoM: 60, family: "F1", compact: true, tol: 0.002, workers: 2, save: save,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// The saved rule set must load back.
	if fi, err := os.Stat(save); err != nil || fi.Size() == 0 {
		t.Fatalf("saved rules missing: %v", err)
	}
}

// TestRunPrintsTelemetrySummary asserts the acceptance-criteria output: a
// telemetry line with models trained/shared and conditions expanded, and a
// phases line with per-phase wall time.
func TestRunPrintsTelemetrySummary(t *testing.T) {
	input := writeTaxCSV(t, 600)
	var buf bytes.Buffer
	err := runTo(context.Background(), &buf, runConfig{
		input: input, yName: "Tax", xNames: "Salary", rhoM: 60, family: "F1", compact: true, workers: 1,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"telemetry: ",
		"conditions expanded=",
		"models trained=",
		"models shared=",
		"phases: ",
		"discover=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunTimeout: an immediately expiring -timeout aborts the mine and
// surfaces a context error.
func TestRunTimeout(t *testing.T) {
	input := writeTaxCSV(t, 800)
	err := run(context.Background(), runConfig{
		input: input, yName: "Tax", xNames: "Salary", rhoM: 60, family: "F1",
		workers: 1, timeout: time.Nanosecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestRunDiscoverPrune(t *testing.T) {
	input := writeTaxCSV(t, 600)
	err := run(context.Background(), runConfig{
		input: input, yName: "Tax", xNames: "Salary",
		rhoM: 60, family: "F2", prune: true, workers: 1,
	})
	if err != nil {
		t.Fatalf("run with prune: %v", err)
	}
}

func TestRunDiscoverValidation(t *testing.T) {
	input := writeTaxCSV(t, 100)
	cases := []runConfig{
		{},                           // missing everything
		{input: input, yName: "Tax"}, // missing -x
		{input: input, yName: "Nope", xNames: "Salary", family: "F1", rhoM: 1},                  // unknown y
		{input: input, yName: "Tax", xNames: "Nope", family: "F1", rhoM: 1},                     // unknown x
		{input: input, yName: "Tax", xNames: "Salary", family: "F9", rhoM: 1},                   // unknown family
		{input: input, yName: "Tax", xNames: "Salary", condCols: "Nope", family: "F1", rhoM: 1}, // unknown cond
		{input: "/does/not/exist.csv", yName: "Tax", xNames: "Salary", family: "F1", rhoM: 1},
	}
	for i, rc := range cases {
		rc.workers = 1
		if err := run(context.Background(), rc); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRunDiscoverDefaultCondAttrs(t *testing.T) {
	input := writeTaxCSV(t, 400)
	// No -cond: categorical columns must be picked up automatically.
	err := run(context.Background(), runConfig{
		input: input, yName: "Tax", xNames: "Salary", rhoM: 60, family: "F1", workers: 1,
	})
	if err != nil {
		t.Fatalf("run without -cond: %v", err)
	}
}

// TestRunDiscoverStrategy drives the -strategy seam end to end: each named
// induction strategy must run the pipeline, emit rules, and (for the
// non-lattice strategies) surface its counters on the induction summary line.
func TestRunDiscoverStrategy(t *testing.T) {
	input := writeTaxCSV(t, 500)
	for _, name := range []string{"lattice", "growprune", "stability"} {
		var buf bytes.Buffer
		err := runTo(context.Background(), &buf, runConfig{
			input: input, yName: "Tax", xNames: "Salary", condCols: "State,MaritalStatus",
			rhoM: 60, family: "F1", workers: 1, strategy: name,
		})
		if err != nil {
			t.Fatalf("-strategy %s: %v", name, err)
		}
		out := buf.String()
		if !strings.Contains(out, "discovered ") {
			t.Errorf("-strategy %s: no discovery summary in output", name)
		}
		if name != "lattice" && !strings.Contains(out, "induction:") {
			t.Errorf("-strategy %s: no induction telemetry line in output:\n%s", name, out)
		}
	}
	err := run(context.Background(), runConfig{
		input: input, yName: "Tax", xNames: "Salary", rhoM: 60, family: "F1",
		workers: 1, strategy: "nope",
	})
	if err == nil {
		t.Fatal("unknown -strategy accepted")
	}
}
