// Command crrdiscover mines conditional regression rules from a CSV file:
// Algorithm 1 (CRR searching with model sharing) optionally followed by
// Algorithm 2 (compaction with inference).
//
// Usage:
//
//	crrdiscover -input data.csv -y Tax -x Salary -cond State,MaritalStatus -rho 60 -compact
//	crrdiscover -store -input power.crrcol -y usage -x temperature -rho 12
//
// The CSV needs a header row; column kinds are inferred (numeric when every
// non-empty cell parses as a float). Empty cells are treated as missing.
//
// With -store, -input names an out-of-core column store directory (built by
// crrgen -store or colstore.BuildCSVFile) instead of a CSV: the store is
// memory-mapped and mined in place, so datasets far past RAM discover
// without ever materializing tuples. Tuple-only post-passes (-prune, the
// stability strategy, the coverage/RMSE evaluation) are unavailable there.
//
// -strategy selects the induction strategy behind Algorithm 1's seam:
// "lattice" (the paper's walk, default), "growprune" (per-seed grow/prune)
// or "stability" (bootstrap stability selection).
//
// Long mines can be bounded with -timeout (the run stops within one queue
// iteration and reports the cancellation) and profiled with -pprof ADDR
// (serves net/http/pprof). A telemetry summary — conditions expanded, models
// trained vs. shared, wall time per phase — is printed after every run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/crrlab/crr/internal/colstore"
	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/eval"
	"github.com/crrlab/crr/internal/induction"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/telemetry"
)

func main() {
	var (
		input    = flag.String("input", "", "input CSV path, or a column store directory with -store (required)")
		store    = flag.Bool("store", false, "treat -input as an out-of-core column store directory (mmap'd, no tuples in memory)")
		yName    = flag.String("y", "", "target attribute name (required)")
		xNames   = flag.String("x", "", "comma-separated regression attributes (required)")
		condCols = flag.String("cond", "", "comma-separated condition attributes (default: x + categorical columns)")
		rhoM     = flag.Float64("rho", 1.0, "maximum bias ρ_M")
		predSize = flag.Int("preds", 0, "predicates per numeric attribute (0 = every domain value)")
		family   = flag.String("family", "F1", "model family: F1 (linear), F2 (ridge), F3 (mlp)")
		compact  = flag.Bool("compact", false, "run Algorithm 2 compaction after discovery")
		tol      = flag.Float64("compact-tol", 0, "model tolerance for compaction (0 = exact)")
		prune    = flag.Bool("prune", false, "merge statistically indistinguishable adjacent windows before compaction")
		workers  = flag.Int("workers", 1, "discovery worker count (1 = sequential, <0 = one per CPU)")
		strategy = flag.String("strategy", "lattice", "induction strategy: lattice, growprune or stability")
		parallel = flag.Int("parallel", 0, "deprecated alias for -workers")
		seed     = flag.Int64("seed", 0, "random seed (predicate generation, random queue order)")
		timeout  = flag.Duration("timeout", 0, "abort discovery after this duration (e.g. 30s; 0 = no limit)")
		pprof    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		save     = flag.String("save", "", "write the final rule set as JSON to this path")
		metrics  = flag.String("metrics", "", "write the run's metrics in Prometheus text format to this path (\"-\" = stdout), the same exposition crrserve serves at /metrics")
		mergeWin = flag.Float64("merge-windows", 0, "collapse touching windows whose y=δ agree within this tolerance (widens ρ accordingly)")
	)
	flag.Parse()
	w := *workers
	if *parallel != 0 {
		fmt.Fprintln(os.Stderr, "crrdiscover: -parallel is deprecated, use -workers")
		w = *parallel
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, runConfig{
		input: *input, store: *store, yName: *yName, xNames: *xNames, condCols: *condCols,
		rhoM: *rhoM, predSize: *predSize, family: *family,
		compact: *compact, tol: *tol, prune: *prune, workers: w, save: *save,
		strategy:     *strategy,
		mergeWindows: *mergeWin, seed: *seed, timeout: *timeout, pprofAddr: *pprof,
		metrics: *metrics,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "crrdiscover:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	input, yName, xNames, condCols string
	store                          bool
	rhoM                           float64
	predSize                       int
	family                         string
	compact                        bool
	tol                            float64
	prune                          bool
	workers                        int
	strategy                       string
	save                           string
	mergeWindows                   float64
	seed                           int64
	timeout                        time.Duration
	pprofAddr                      string
	metrics                        string
}

func run(ctx context.Context, rc runConfig) error {
	return runTo(ctx, os.Stdout, rc)
}

func runTo(ctx context.Context, w io.Writer, rc runConfig) error {
	input, yName, xNames, condCols := rc.input, rc.yName, rc.xNames, rc.condCols
	rhoM, predSize, family, compact, tol := rc.rhoM, rc.predSize, rc.family, rc.compact, rc.tol
	if input == "" || yName == "" || xNames == "" {
		return fmt.Errorf("-input, -y and -x are required (see -h)")
	}
	if rc.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rc.timeout)
		defer cancel()
	}
	if rc.pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(rc.pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "crrdiscover: pprof:", err)
			}
		}()
		fmt.Fprintf(w, "pprof listening on http://%s/debug/pprof/\n", rc.pprofAddr)
	}
	reg := telemetry.New()

	if rc.store && rc.prune {
		return fmt.Errorf("-prune re-fits over tuples and is unavailable with -store")
	}

	stopLoad := reg.Time(telemetry.PhaseLoad)
	// Load either path into (schema, rel | cols): a parsed CSV relation, or
	// the adopted ColumnSet of an mmap'd store with no tuples anywhere.
	var rel *dataset.Relation
	var cols *dataset.ColumnSet
	var schema *dataset.Schema
	if rc.store {
		st, err := colstore.OpenWith(input, colstore.OpenOptions{Telemetry: reg})
		if err != nil {
			return err
		}
		defer st.Close()
		cols, schema = st.Columns(), st.Schema()
	} else {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, err = dataset.ReadCSV(f)
		if err != nil {
			return err
		}
		schema = rel.Schema
	}

	yattr, err := schema.Index(yName)
	if err != nil {
		return err
	}
	var xattrs []int
	for _, name := range strings.Split(xNames, ",") {
		i, err := schema.Index(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		xattrs = append(xattrs, i)
	}
	var cond []int
	if condCols != "" {
		for _, name := range strings.Split(condCols, ",") {
			i, err := schema.Index(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			cond = append(cond, i)
		}
	} else {
		seen := map[int]bool{}
		for _, a := range xattrs {
			if a != yattr && !seen[a] {
				seen[a] = true
				cond = append(cond, a)
			}
		}
		for i := 0; i < schema.Len(); i++ {
			if i != yattr && !seen[i] && schema.Attr(i).Kind == dataset.Categorical {
				seen[i] = true
				cond = append(cond, i)
			}
		}
	}

	var trainer regress.Trainer
	switch strings.ToUpper(family) {
	case "F1":
		trainer = regress.LinearTrainer{}
	case "F2":
		trainer = regress.LinearTrainer{Ridge: 1}
	case "F3":
		trainer = regress.NewMLPTrainer(1)
	default:
		return fmt.Errorf("unknown family %q (want F1, F2 or F3)", family)
	}
	stopLoad()

	stopPreds := reg.Time(telemetry.PhasePredicates)
	gcfg := predicate.GeneratorConfig{Size: predSize, Seed: rc.seed}
	var preds []predicate.Predicate
	if rc.store {
		preds = predicate.GenerateColumns(cols, cond, gcfg)
	} else {
		preds = predicate.Generate(rel, cond, gcfg)
	}
	stopPreds()

	var strat core.Strategy
	if rc.strategy != "" {
		if strat, err = induction.Lookup(rc.strategy); err != nil {
			return err
		}
	}

	stopDiscover := reg.Time(telemetry.PhaseDiscover)
	dcfg := core.DiscoverConfig{
		XAttrs:    xattrs,
		YAttr:     yattr,
		RhoM:      rhoM,
		Preds:     preds,
		Trainer:   trainer,
		Seed:      rc.seed,
		Workers:   rc.workers,
		Strategy:  strat,
		Telemetry: reg,
	}
	var res *core.DiscoverResult
	if rc.store {
		res, err = core.DiscoverColumns(ctx, cols, core.WithConfig(dcfg))
	} else {
		res, err = core.Discover(ctx, rel, core.WithConfig(dcfg))
	}
	stopDiscover()
	if err != nil {
		return err
	}
	rules := res.Rules
	if rc.prune {
		pruned, pst, err := core.Prune(rel, rules, core.PruneOptions{Trainer: trainer})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "pruned to %d rules (%d of %d adjacent pairs merged)\n",
			pruned.NumRules(), pst.Merged, pst.Tested)
		rules = pruned
	}
	fmt.Fprintf(w, "discovered %d rules (%d models trained, %d shared, %d nodes)\n",
		rules.NumRules(), res.Stats.ModelsTrained, res.Stats.ShareHits, res.Stats.NodesExpanded)
	stopCompact := reg.Time(telemetry.PhaseCompact)
	if compact {
		compacted, stats, err := core.CompactCtx(ctx, rules, core.CompactOptions{ModelTol: tol, Telemetry: reg})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "compacted to %d rules (%d translations, %d fusions, %d implied)\n",
			compacted.NumRules(), stats.Translations, stats.Fusions, stats.Implied)
		rules = compacted
	}
	if rc.mergeWindows > 0 {
		rules = core.MergeWindows(rules, rc.mergeWindows)
		fmt.Fprintf(w, "window merging (tol %g): %d rules remain\n", rc.mergeWindows, rules.NumRules())
	}
	stopCompact()

	stopEval := reg.Time(telemetry.PhaseEvaluate)
	rules.SetTelemetry(reg)
	fmt.Fprintln(w, core.Summarize(rules))
	if rc.store {
		// Coverage/RMSE evaluation walks tuples; a store-backed run has none.
		fmt.Fprintln(w)
	} else {
		fmt.Fprintf(w, "coverage %.3f, training RMSE %.6g\n\n", rules.Coverage(rel), rules.RMSE(rel))
	}
	for i := range rules.Rules {
		fmt.Fprintf(w, "φ%d: %s\n", i+1, rules.Rules[i].Format(schema))
	}
	if rc.save != "" {
		out, err := os.Create(rc.save)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := core.WriteRuleSet(out, rules); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nsaved %d rules to %s\n", rules.NumRules(), rc.save)
	}
	stopEval()

	fmt.Fprintln(w)
	snap := reg.Snapshot()
	for _, line := range eval.TelemetrySummary(snap) {
		fmt.Fprintln(w, line)
	}
	if rc.metrics != "" {
		if err := writeMetrics(w, rc.metrics, snap); err != nil {
			return err
		}
	}
	return nil
}

// writeMetrics dumps the snapshot in the same Prometheus text exposition
// crrserve serves at GET /metrics, to path ("-" = the run's own output).
func writeMetrics(w io.Writer, path string, snap telemetry.Snapshot) error {
	if path == "-" {
		return snap.WriteText(w)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
