// Command crrdiscover mines conditional regression rules from a CSV file:
// Algorithm 1 (CRR searching with model sharing) optionally followed by
// Algorithm 2 (compaction with inference).
//
// Usage:
//
//	crrdiscover -input data.csv -y Tax -x Salary -cond State,MaritalStatus -rho 60 -compact
//
// The CSV needs a header row; column kinds are inferred (numeric when every
// non-empty cell parses as a float). Empty cells are treated as missing.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

func main() {
	var (
		input    = flag.String("input", "", "input CSV path (required)")
		yName    = flag.String("y", "", "target attribute name (required)")
		xNames   = flag.String("x", "", "comma-separated regression attributes (required)")
		condCols = flag.String("cond", "", "comma-separated condition attributes (default: x + categorical columns)")
		rhoM     = flag.Float64("rho", 1.0, "maximum bias ρ_M")
		predSize = flag.Int("preds", 0, "predicates per numeric attribute (0 = every domain value)")
		family   = flag.String("family", "F1", "model family: F1 (linear), F2 (ridge), F3 (mlp)")
		compact  = flag.Bool("compact", false, "run Algorithm 2 compaction after discovery")
		tol      = flag.Float64("compact-tol", 0, "model tolerance for compaction (0 = exact)")
		prune    = flag.Bool("prune", false, "merge statistically indistinguishable adjacent windows before compaction")
		parallel = flag.Int("parallel", 1, "discovery worker count (1 = sequential)")
		save     = flag.String("save", "", "write the final rule set as JSON to this path")
		mergeWin = flag.Float64("merge-windows", 0, "collapse touching windows whose y=δ agree within this tolerance (widens ρ accordingly)")
	)
	flag.Parse()
	if err := run(runConfig{
		input: *input, yName: *yName, xNames: *xNames, condCols: *condCols,
		rhoM: *rhoM, predSize: *predSize, family: *family,
		compact: *compact, tol: *tol, prune: *prune, parallel: *parallel, save: *save,
		mergeWindows: *mergeWin,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "crrdiscover:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	input, yName, xNames, condCols string
	rhoM                           float64
	predSize                       int
	family                         string
	compact                        bool
	tol                            float64
	prune                          bool
	parallel                       int
	save                           string
	mergeWindows                   float64
}

func run(rc runConfig) error {
	input, yName, xNames, condCols := rc.input, rc.yName, rc.xNames, rc.condCols
	rhoM, predSize, family, compact, tol := rc.rhoM, rc.predSize, rc.family, rc.compact, rc.tol
	if input == "" || yName == "" || xNames == "" {
		return fmt.Errorf("-input, -y and -x are required (see -h)")
	}
	f, err := os.Open(input)
	if err != nil {
		return err
	}
	defer f.Close()
	rel, err := dataset.ReadCSV(f)
	if err != nil {
		return err
	}

	yattr, err := rel.Schema.Index(yName)
	if err != nil {
		return err
	}
	var xattrs []int
	for _, name := range strings.Split(xNames, ",") {
		i, err := rel.Schema.Index(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		xattrs = append(xattrs, i)
	}
	var cond []int
	if condCols != "" {
		for _, name := range strings.Split(condCols, ",") {
			i, err := rel.Schema.Index(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			cond = append(cond, i)
		}
	} else {
		seen := map[int]bool{}
		for _, a := range xattrs {
			if a != yattr && !seen[a] {
				seen[a] = true
				cond = append(cond, a)
			}
		}
		for i := 0; i < rel.Schema.Len(); i++ {
			if i != yattr && !seen[i] && rel.Schema.Attr(i).Kind == dataset.Categorical {
				seen[i] = true
				cond = append(cond, i)
			}
		}
	}

	var trainer regress.Trainer
	switch strings.ToUpper(family) {
	case "F1":
		trainer = regress.LinearTrainer{}
	case "F2":
		trainer = regress.LinearTrainer{Ridge: 1}
	case "F3":
		trainer = regress.NewMLPTrainer(1)
	default:
		return fmt.Errorf("unknown family %q (want F1, F2 or F3)", family)
	}

	preds := predicate.Generate(rel, cond, predicate.GeneratorConfig{Size: predSize})
	dcfg := core.DiscoverConfig{
		XAttrs:  xattrs,
		YAttr:   yattr,
		RhoM:    rhoM,
		Preds:   preds,
		Trainer: trainer,
	}
	res, err := core.DiscoverParallel(rel, dcfg, rc.parallel)
	if err != nil {
		return err
	}
	rules := res.Rules
	if rc.prune {
		pruned, pst, err := core.Prune(rel, rules, core.PruneOptions{Trainer: trainer})
		if err != nil {
			return err
		}
		fmt.Printf("pruned to %d rules (%d of %d adjacent pairs merged)\n",
			pruned.NumRules(), pst.Merged, pst.Tested)
		rules = pruned
	}
	fmt.Printf("discovered %d rules (%d models trained, %d shared, %d nodes)\n",
		rules.NumRules(), res.Stats.ModelsTrained, res.Stats.ShareHits, res.Stats.NodesExpanded)
	if compact {
		compacted, stats := core.CompactOpts(rules, core.CompactOptions{ModelTol: tol})
		fmt.Printf("compacted to %d rules (%d translations, %d fusions, %d implied)\n",
			compacted.NumRules(), stats.Translations, stats.Fusions, stats.Implied)
		rules = compacted
	}
	if rc.mergeWindows > 0 {
		rules = core.MergeWindows(rules, rc.mergeWindows)
		fmt.Printf("window merging (tol %g): %d rules remain\n", rc.mergeWindows, rules.NumRules())
	}
	fmt.Println(core.Summarize(rules))
	fmt.Printf("coverage %.3f, training RMSE %.6g\n\n", rules.Coverage(rel), rules.RMSE(rel))
	for i := range rules.Rules {
		fmt.Printf("φ%d: %s\n", i+1, rules.Rules[i].Format(rel.Schema))
	}
	if rc.save != "" {
		out, err := os.Create(rc.save)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := core.WriteRuleSet(out, rules); err != nil {
			return err
		}
		fmt.Printf("\nsaved %d rules to %s\n", rules.NumRules(), rc.save)
	}
	return nil
}
