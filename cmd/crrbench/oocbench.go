package main

// The out-of-core scaling benchmark (-ooc): build an on-disk electricity
// store at each requested row count with the chunked streaming builder, mmap
// it back, and mine it through DiscoverColumns — no relation ever in memory.
// Each phase reports wall time and peak Go heap (sampled): the build's heap
// must stay bounded by the chunk budget no matter the store size, and
// build/discover wall time must scale near-linearly in rows, since every
// pass over the data is a streaming scan. The results land as BENCH_ooc.json
// when -out is set.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/crrlab/crr/internal/colstore"
	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/experiments"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/telemetry"
)

// oocResult is one row-count's measurements.
type oocResult struct {
	Rows                  int     `json:"rows"`
	ChunkRows             int     `json:"chunk_rows"`
	StoreBytes            int64   `json:"store_bytes"`
	BuildSeconds          float64 `json:"build_seconds"`
	BuildNsPerRow         float64 `json:"build_ns_per_row"`
	BuildPeakHeapBytes    uint64  `json:"build_peak_heap_bytes"`
	DiscoverSeconds       float64 `json:"discover_seconds"`
	DiscoverNsPerRow      float64 `json:"discover_ns_per_row"`
	DiscoverPeakHeapBytes uint64  `json:"discover_peak_heap_bytes"`
	BytesMapped           int64   `json:"bytes_mapped"`
	Rules                 int     `json:"rules"`
	ModelsTrained         int     `json:"models_trained"`
}

// heapWatch samples the Go heap in the background and remembers the peak.
type heapWatch struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func watchHeap() *heapWatch {
	runtime.GC()
	w := &heapWatch{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		var ms runtime.MemStats
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > w.peak {
					w.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return w
}

// Stop ends sampling and returns the observed peak (including one final
// sample, so short phases still report).
func (w *heapWatch) Stop() uint64 {
	close(w.stop)
	<-w.done
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > w.peak {
		w.peak = ms.HeapAlloc
	}
	return w.peak
}

// parseRowsList parses the -ooc-rows flag ("1000000,3000000,10000000").
func parseRowsList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -ooc-rows entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// runOOC drives the benchmark across the requested row counts.
func runOOC(ctx context.Context, rowsFlag string, chunkRows int, outPath string) error {
	sizes, err := parseRowsList(rowsFlag)
	if err != nil {
		return err
	}
	if chunkRows <= 0 {
		chunkRows = colstore.DefaultChunkRows
	}
	spec := experiments.ElectricitySpec()
	var results []oocResult
	fmt.Printf("out-of-core scaling (electricity, chunk %d rows)\n", chunkRows)
	fmt.Printf("%-10s  %-10s  %-11s  %-11s  %-10s  %-11s  %-11s  %s\n",
		"rows", "store MB", "build s", "heap MB", "discover s", "heap MB", "ns/row", "rules")
	for _, n := range sizes {
		if err := ctx.Err(); err != nil {
			return err
		}
		r, err := runOOCSize(ctx, spec, n, chunkRows)
		if err != nil {
			return fmt.Errorf("ooc %d rows: %w", n, err)
		}
		results = append(results, r)
		fmt.Printf("%-10d  %-10.1f  %-11.2f  %-11.1f  %-10.2f  %-11.1f  %-11.1f  %d\n",
			r.Rows, float64(r.StoreBytes)/1e6, r.BuildSeconds,
			float64(r.BuildPeakHeapBytes)/1e6, r.DiscoverSeconds,
			float64(r.DiscoverPeakHeapBytes)/1e6, r.DiscoverNsPerRow, r.Rules)
	}
	if len(results) > 1 {
		first, last := results[0], results[len(results)-1]
		fmt.Printf("scaling %d → %d rows: build %.2fx/row, discover %.2fx/row (1.0 = perfectly linear)\n",
			first.Rows, last.Rows,
			last.BuildNsPerRow/first.BuildNsPerRow,
			last.DiscoverNsPerRow/first.DiscoverNsPerRow)
	}
	if outPath == "" {
		return nil
	}
	doc := struct {
		Description string      `json:"description"`
		Command     string      `json:"command"`
		Dataset     string      `json:"dataset"`
		Results     []oocResult `json:"results"`
	}{
		Description: "Out-of-core column store scaling: chunk-streamed store build plus mmap-backed DiscoverColumns per row count. Build peak heap is bounded by the chunk budget (the mapped lanes never enter the Go heap); near-linear ns/row across sizes is the scaling claim.",
		Command:     fmt.Sprintf("crrbench -ooc -ooc-rows %s -ooc-chunk %d", rowsFlag, chunkRows),
		Dataset:     spec.Name,
		Results:     results,
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runOOCSize builds, maps and mines one store size.
func runOOCSize(ctx context.Context, spec experiments.DatasetSpec, rows, chunkRows int) (oocResult, error) {
	res := oocResult{Rows: rows, ChunkRows: chunkRows}
	dir, err := os.MkdirTemp("", "crr-ooc-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	storeDir := filepath.Join(dir, "store")

	// Build: chunk i regenerates with seed+i (the crrgen -store discipline),
	// so resident state is one chunk of tuples plus the builder's run buffers.
	watch := watchHeap()
	start := time.Now()
	cfg := dataset.DefaultElectricityConfig()
	cfg.Rows, cfg.Seed = 1, 1
	b, err := colstore.NewBuilder(storeDir, dataset.GenerateElectricity(cfg).Schema, colstore.BuilderOptions{ChunkRows: chunkRows})
	if err != nil {
		return res, err
	}
	for i, written := 0, 0; written < rows; i++ {
		if err := ctx.Err(); err != nil {
			b.Abort()
			return res, err
		}
		n := rows - written
		if n > chunkRows {
			n = chunkRows
		}
		ccfg := dataset.DefaultElectricityConfig()
		ccfg.Rows, ccfg.Seed = n, 1+int64(i)
		if err := b.AppendRelation(dataset.GenerateElectricity(ccfg)); err != nil {
			b.Abort()
			return res, err
		}
		written += n
	}
	if err := b.Finish(); err != nil {
		return res, err
	}
	res.BuildSeconds = time.Since(start).Seconds()
	res.BuildNsPerRow = res.BuildSeconds * 1e9 / float64(rows)
	res.BuildPeakHeapBytes = watch.Stop()
	filepath.WalkDir(storeDir, func(_ string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			if fi, err := d.Info(); err == nil {
				res.StoreBytes += fi.Size()
			}
		}
		return nil
	})

	// Discover: mmap the store and mine it in place.
	reg := telemetry.New()
	st, err := colstore.OpenWith(storeDir, colstore.OpenOptions{Telemetry: reg})
	if err != nil {
		return res, err
	}
	defer st.Close()
	preds := predicate.GenerateColumns(st.Columns(), spec.CondAttrs, predicate.GeneratorConfig{
		Kind: predicate.Binary, Size: 16,
	})
	watch = watchHeap()
	start = time.Now()
	out, err := core.DiscoverColumns(ctx, st.Columns(), core.WithConfig(core.DiscoverConfig{
		XAttrs:  spec.XAttrs,
		YAttr:   spec.YAttr,
		RhoM:    spec.RhoM,
		Preds:   preds,
		Trainer: regress.LinearTrainer{},
	}))
	if err != nil {
		return res, err
	}
	res.DiscoverSeconds = time.Since(start).Seconds()
	res.DiscoverNsPerRow = res.DiscoverSeconds * 1e9 / float64(rows)
	res.DiscoverPeakHeapBytes = watch.Stop()
	res.BytesMapped = reg.Counter(telemetry.MetricColstoreBytesMapped).Value()
	res.Rules = out.Rules.NumRules()
	res.ModelsTrained = out.Stats.ModelsTrained
	return res, nil
}
