// Command crrbench regenerates the tables and figures of the paper's
// evaluation (§VI) on the synthetic dataset substitutes.
//
// Usage:
//
//	crrbench -exp fig2            # one experiment
//	crrbench -exp all             # everything (EXPERIMENTS.md source data)
//	crrbench -exp fig3 -scale 0.2 # shrink instance sizes for a quick look
//	crrbench -list                # show experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/crrlab/crr/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id (see -list) or \"all\"")
		scale  = flag.Float64("scale", 1.0, "instance-size scale in (0, 1]")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		format = flag.String("format", "table", "output format: table or csv")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-18s %s\n", e.ID, e.Artifact)
		}
		return
	}
	if err := run(*exp, *scale, *format); err != nil {
		fmt.Fprintln(os.Stderr, "crrbench:", err)
		os.Exit(1)
	}
}

func run(exp string, scale float64, format string) error {
	if format != "table" && format != "csv" {
		return fmt.Errorf("unknown format %q (want table or csv)", format)
	}
	if exp == "all" {
		for _, e := range experiments.Registry() {
			if err := runOne(e, scale, format); err != nil {
				return err
			}
		}
		return nil
	}
	e, err := experiments.Lookup(exp)
	if err != nil {
		return err
	}
	return runOne(e, scale, format)
}

func runOne(e experiments.Experiment, scale float64, format string) error {
	rows, err := e.Run(scale)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	if format == "csv" {
		return experiments.WriteRowsCSV(os.Stdout, rows)
	}
	if err := experiments.RenderRows(os.Stdout, fmt.Sprintf("[%s] %s", e.ID, e.Artifact), rows); err != nil {
		return err
	}
	fmt.Println()
	return nil
}
