// Command crrbench regenerates the tables and figures of the paper's
// evaluation (§VI) on the synthetic dataset substitutes.
//
// Usage:
//
//	crrbench -exp fig2            # one experiment
//	crrbench -exp all             # everything (EXPERIMENTS.md source data)
//	crrbench -exp fig3 -scale 0.2 # shrink instance sizes for a quick look
//	crrbench -compare             # hot-path before/after (stats vs full pass)
//	crrbench -serve               # /v1/predict throughput, JSON vs binary
//	crrbench -strategies          # induction strategies: rules / RMSE / latency
//	crrbench -ooc                 # out-of-core store build + discovery scaling
//	crrbench -list                # show experiment ids
//
// Long sweeps can be bounded with -timeout (every in-flight discovery stops
// within one queue iteration) and profiled with -pprof ADDR. Each experiment
// table carries per-row discovery telemetry (models trained/shared,
// conditions expanded) and is followed by a summary line totaling them.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"time"

	"github.com/crrlab/crr/internal/experiments"
	"github.com/crrlab/crr/internal/telemetry"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (see -list) or \"all\"")
		scale   = flag.Float64("scale", 1.0, "instance-size scale in (0, 1]")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		format  = flag.String("format", "table", "output format: table or csv")
		compare = flag.Bool("compare", false, "run the hot-path before/after comparison (sufficient statistics vs full pass) and exit")
		sbench  = flag.Bool("serve", false, "measure /v1/predict serve throughput (JSON vs binary columnar, through the SDK) and exit")
		strats  = flag.Bool("strategies", false, "compare the induction strategies (lattice vs growprune vs stability: rule count, test RMSE, discovery latency) and exit")
		ooc     = flag.Bool("ooc", false, "run the out-of-core column-store scaling benchmark (chunked build + mmap-backed discovery per size) and exit")
		oocRows = flag.String("ooc-rows", "1000000,3000000,10000000", "with -ooc: comma-separated store sizes in rows")
		oocChnk = flag.Int("ooc-chunk", 0, "with -ooc: store build chunk rows (0 = default)")
		out     = flag.String("out", "", "with -strategies or -ooc: also write the results as JSON to this path (e.g. BENCH_strategies.json, BENCH_ooc.json)")
		timeout = flag.Duration("timeout", 0, "abort the run after this duration (e.g. 5m; 0 = no limit)")
		pprof   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		metrics = flag.String("metrics", "", "write the sweep's aggregate metrics in Prometheus text format to this path (\"-\" = stdout), the same exposition crrserve serves at /metrics")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-18s %s\n", e.ID, e.Artifact)
		}
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *pprof != "" {
		go func() {
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				fmt.Fprintln(os.Stderr, "crrbench: pprof:", err)
			}
		}()
		fmt.Printf("pprof listening on http://%s/debug/pprof/\n", *pprof)
	}
	if *compare {
		if err := runCompare(ctx, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "crrbench:", err)
			os.Exit(1)
		}
		return
	}
	if *sbench {
		if err := runServeBench(ctx, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "crrbench:", err)
			os.Exit(1)
		}
		return
	}
	if *strats {
		if err := runStrategies(ctx, *scale, *out); err != nil {
			fmt.Fprintln(os.Stderr, "crrbench:", err)
			os.Exit(1)
		}
		return
	}
	if *ooc {
		if err := runOOC(ctx, *oocRows, *oocChnk, *out); err != nil {
			fmt.Fprintln(os.Stderr, "crrbench:", err)
			os.Exit(1)
		}
		return
	}
	reg := telemetry.New()
	if err := run(ctx, reg, *exp, *scale, *format); err != nil {
		fmt.Fprintln(os.Stderr, "crrbench:", err)
		os.Exit(1)
	}
	if *metrics != "" {
		if err := writeMetrics(*metrics, reg.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "crrbench:", err)
			os.Exit(1)
		}
	}
}

// writeMetrics dumps the aggregate sweep counters in the same Prometheus
// text exposition crrserve serves at GET /metrics.
func writeMetrics(path string, snap telemetry.Snapshot) error {
	if path == "-" {
		return snap.WriteText(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runCompare renders the hot-path before/after table: the same sequential
// mine with the sufficient-statistics fast path on (default) and off
// (regress.FullPass), plus the columnar scan engine against the
// tuple-at-a-time reference (DiscoverConfig.RowScan), per dataset, with a
// speedup column and the output identity verdicts. A divergent output is an
// error — the fast path must not change what discovery finds, and the
// columnar engine must be bitwise-identical to the row scan.
func runCompare(ctx context.Context, scale float64) error {
	rows, err := experiments.HotPathCompare(ctx, scale)
	if err != nil {
		return err
	}
	if err := experiments.RenderCompareRows(os.Stdout, rows); err != nil {
		return err
	}
	for _, r := range rows {
		if !r.Identical {
			return fmt.Errorf("compare %s: fast and full-pass output diverged", r.Dataset)
		}
		if !r.Bitwise {
			return fmt.Errorf("compare %s: columnar and row-scan output not bitwise-identical", r.Dataset)
		}
	}
	return nil
}

// runStrategies renders the induction-strategy comparison — every strategy
// behind the core.Strategy seam on the five evaluation datasets, scored for
// rule count, train/test RMSE (interleaved even/odd split) and discovery
// wall time — and optionally writes the rows as JSON (BENCH_strategies.json).
func runStrategies(ctx context.Context, scale float64, outPath string) error {
	rows, err := experiments.StrategyCompare(ctx, scale)
	if err != nil {
		return err
	}
	if err := experiments.RenderStrategyRows(os.Stdout, rows); err != nil {
		return err
	}
	if outPath == "" {
		return nil
	}
	doc := struct {
		Description string                    `json:"description"`
		Command     string                    `json:"command"`
		Strategies  []string                  `json:"strategies"`
		Rows        []experiments.StrategyRow `json:"rows"`
	}{
		Description: "Induction-strategy comparison: rule count, models trained, discovery latency and train/test RMSE per strategy on the five evaluation datasets (interleaved even/odd train/test split, sequential engine).",
		Command:     fmt.Sprintf("crrbench -strategies -scale %g", scale),
		Strategies:  experiments.StrategyNames(),
		Rows:        rows,
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(ctx context.Context, reg *telemetry.Registry, exp string, scale float64, format string) error {
	if format != "table" && format != "csv" {
		return fmt.Errorf("unknown format %q (want table or csv)", format)
	}
	if exp == "all" {
		for _, e := range experiments.Registry() {
			if err := runOne(ctx, reg, e, scale, format); err != nil {
				return err
			}
		}
		return nil
	}
	e, err := experiments.Lookup(exp)
	if err != nil {
		return err
	}
	return runOne(ctx, reg, e, scale, format)
}

func runOne(ctx context.Context, reg *telemetry.Registry, e experiments.Experiment, scale float64, format string) error {
	start := time.Now()
	rows, err := e.Run(ctx, scale)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	elapsed := time.Since(start)
	if format == "csv" {
		return experiments.WriteRowsCSV(os.Stdout, rows)
	}
	if err := experiments.RenderRows(os.Stdout, fmt.Sprintf("[%s] %s", e.ID, e.Artifact), rows); err != nil {
		return err
	}
	var trained, shared, expanded int
	for _, r := range rows {
		trained += r.Trained
		shared += r.Shared
		expanded += r.Expanded
	}
	// Mirror the summary totals into the registry so -metrics renders the
	// sweep through the same exposition path the server uses.
	reg.Counter(telemetry.MetricModelsTrained).Add(int64(trained))
	reg.Counter(telemetry.MetricModelsShared).Add(int64(shared))
	reg.Counter(telemetry.MetricConditionsExpanded).Add(int64(expanded))
	reg.Histogram("bench." + e.ID + ".wall").Observe(elapsed)
	fmt.Printf("telemetry: models trained=%d, models shared=%d, conditions expanded=%d, wall=%s\n\n",
		trained, shared, expanded, elapsed.Round(time.Millisecond))
	return nil
}
