package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"testing"

	"github.com/crrlab/crr/internal/cliutil"
	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/eval"
	"github.com/crrlab/crr/internal/experiments"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/serve"
	"github.com/crrlab/crr/pkg/client"
)

// serveBenchRow is one serve-throughput measurement: /v1/predict over one
// wire format at one batch size, driven through the public SDK against a
// live listener.
type serveBenchRow struct {
	Rows         int
	Format       string
	NsPerOp      int64
	BytesPerOp   int64
	AllocsPerOp  int64
	TuplesPerSec float64
}

// runServeBench measures /v1/predict throughput over the JSON and binary
// columnar formats and renders the comparison table. The go test
// counterparts (BenchmarkServeBatchPredict* in internal/serve) isolate the
// handler stack; this experiment keeps a real TCP listener and the SDK in
// the loop, which is what a deployment sees.
func runServeBench(ctx context.Context, scale float64) error {
	rows, err := serveThroughput(ctx, scale)
	if err != nil {
		return err
	}
	return renderServeBenchRows(os.Stdout, rows)
}

// serveBenchSizes are the measured batch sizes before scaling: the 1k batch
// of BENCH_wire.json plus a multi-frame 100k batch (13 chunks at the
// default 8192-row frame size).
var serveBenchSizes = [...]int{1000, 100_000}

func serveThroughput(ctx context.Context, scale float64) ([]serveBenchRow, error) {
	spec := experiments.TaxSpec()
	train := spec.Gen(benchScaled(1500, scale, 300))
	preds := predicate.Generate(train, spec.CondAttrs, predicate.GeneratorConfig{})
	res, err := core.Discover(ctx, train, core.WithConfig(core.DiscoverConfig{
		XAttrs:  spec.XAttrs,
		YAttr:   spec.YAttr,
		RhoM:    spec.RhoM,
		Preds:   preds,
		Trainer: regress.LinearTrainer{},
	}))
	if err != nil {
		return nil, fmt.Errorf("servebench: discover: %w", err)
	}
	srv, err := serve.NewFromRuleSet(serve.Config{}, res.Rules, "servebench")
	if err != nil {
		return nil, fmt.Errorf("servebench: %w", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	formats := []struct {
		name string
		f    client.Format
	}{
		{"json", client.FormatJSON},
		{"binary", client.FormatBinary},
	}
	var out []serveBenchRow
	for _, base := range serveBenchSizes {
		n := benchScaled(base, scale, 100)
		rel := spec.Gen(n)
		batch, err := cliutil.ClientBatch(rel)
		if err != nil {
			return nil, fmt.Errorf("servebench: batch: %w", err)
		}
		for _, fm := range formats {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			c := client.New(ts.URL, client.WithFormat(fm.f))
			// Warm once outside the measurement so pools, dictionaries and
			// the HTTP connection are established — and so request errors
			// surface as errors, not as a zero benchmark result.
			if _, err := c.Predict(ctx, batch); err != nil {
				return nil, fmt.Errorf("servebench: %s predict: %w", fm.name, err)
			}
			var callErr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := c.Predict(ctx, batch); err != nil {
						callErr = err
						return
					}
				}
			})
			if callErr != nil {
				return nil, fmt.Errorf("servebench: %s predict: %w", fm.name, callErr)
			}
			ns := r.NsPerOp()
			row := serveBenchRow{
				Rows:        n,
				Format:      fm.name,
				NsPerOp:     ns,
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}
			if ns > 0 {
				row.TuplesPerSec = float64(n) * 1e9 / float64(ns)
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// renderServeBenchRows writes the throughput table with a per-size speedup
// column (json ns/op over binary ns/op).
func renderServeBenchRows(w *os.File, rows []serveBenchRow) error {
	jsonNs := make(map[int]int64)
	for _, r := range rows {
		if r.Format == "json" {
			jsonNs[r.Rows] = r.NsPerOp
		}
	}
	t := eval.NewTable("[servebench] /v1/predict throughput through the SDK: JSON vs binary columnar",
		"rows", "format", "ns/op", "B/op", "allocs/op", "tuples/s", "speedup")
	for _, r := range rows {
		speedup := "1.00x"
		if r.Format != "json" && r.NsPerOp > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(jsonNs[r.Rows])/float64(r.NsPerOp))
		}
		t.AddRowf(r.Rows, r.Format, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp,
			fmt.Sprintf("%.0f", r.TuplesPerSec), speedup)
	}
	return t.Render(w)
}

// benchScaled mirrors the experiment packages' size scaling: max(min,
// round(n*scale)) with scale clamped to (0, 1].
func benchScaled(n int, scale float64, min int) int {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	v := int(float64(n) * scale)
	if v < min {
		v = min
	}
	return v
}
