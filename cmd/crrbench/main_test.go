package main

import (
	"context"
	"testing"

	"github.com/crrlab/crr/internal/telemetry"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run(context.Background(), telemetry.New(), "tab4", 0.05, "table"); err != nil {
		t.Fatalf("run(tab4): %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), telemetry.New(), "nope", 1, "table"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run(context.Background(), telemetry.New(), "tab4", 1, "yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRunAllSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("all experiments take a few seconds")
	}
	if err := run(context.Background(), telemetry.New(), "all", 0.05, "csv"); err != nil {
		t.Fatalf("run(all): %v", err)
	}
}
