package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// fixture mines rules on a clean Tax CSV and returns (cleanCSV, rulesJSON).
func fixture(t *testing.T) (string, string) {
	t.Helper()
	cfg := dataset.DefaultTaxConfig()
	cfg.Rows = 600
	rel := dataset.GenerateTax(cfg)
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "tax.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, rel); err != nil {
		t.Fatal(err)
	}
	f.Close()

	salary := rel.Schema.MustIndex("Salary")
	state := rel.Schema.MustIndex("State")
	status := rel.Schema.MustIndex("MaritalStatus")
	tax := rel.Schema.MustIndex("Tax")
	preds := predicate.Generate(rel, []int{state, status}, predicate.GeneratorConfig{})
	res, err := core.Discover(context.Background(), rel, core.WithConfig(core.DiscoverConfig{
		XAttrs: []int{salary}, YAttr: tax, RhoM: 60,
		Preds: preds, Trainer: regress.LinearTrainer{},
	}))
	if err != nil {
		t.Fatal(err)
	}
	rulesPath := filepath.Join(dir, "rules.json")
	rf, err := os.Create(rulesPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.WriteRuleSet(rf, res.Rules); err != nil {
		t.Fatal(err)
	}
	rf.Close()
	return csvPath, rulesPath
}

func TestRunCheckCleanData(t *testing.T) {
	csvPath, rulesPath := fixture(t)
	n, err := run(csvPath, rulesPath, true, 10, false)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 0 {
		t.Errorf("clean data produced %d violations", n)
	}
}

func TestRunCheckDoctoredData(t *testing.T) {
	csvPath, rulesPath := fixture(t)
	// Doctor one Tax cell far outside ρ.
	f, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := dataset.ReadCSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	tax := rel.Schema.MustIndex("Tax")
	bad := rel.Tuples[7].Clone()
	bad[tax] = dataset.Num(bad[tax].Num + 5000)
	rel.Tuples[7] = bad
	doctored := filepath.Join(t.TempDir(), "doctored.csv")
	out, err := os.Create(doctored)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(out, rel); err != nil {
		t.Fatal(err)
	}
	out.Close()

	n, err := run(doctored, rulesPath, true, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("doctored record not flagged")
	}
}

func TestRunCheckValidation(t *testing.T) {
	csvPath, rulesPath := fixture(t)
	if _, err := run("", rulesPath, false, 0, false); err == nil {
		t.Error("missing input accepted")
	}
	if _, err := run(csvPath, "", false, 0, false); err == nil {
		t.Error("missing rules accepted")
	}
	if _, err := run(csvPath, "/nope.json", false, 0, false); err == nil {
		t.Error("bad rules path accepted")
	}
}
