// Command crrcheck uses conditional regression rules as integrity
// constraints: it checks a CSV against a saved rule set (crrdiscover -save)
// and reports every violating tuple, optionally with a repair suggestion.
//
// Usage:
//
//	crrdiscover -input clean.csv -y Tax -x Salary -compact -save rules.json
//	crrcheck    -input suspect.csv -rules rules.json -repair
//
// With -remote the rules stay on a crrserve instance and the check runs
// over HTTP through the Go SDK (binary columnar protocol, JSON fallback):
//
//	crrcheck -input suspect.csv -remote http://localhost:8080 -repair
//
// Exit status is 1 when violations are found, 2 on errors — usable as a
// data-quality gate in pipelines.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/crrlab/crr/internal/cliutil"
	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/pkg/client"
)

func main() {
	var (
		input   = flag.String("input", "", "CSV to check (required)")
		rulesIn = flag.String("rules", "", "saved rule set JSON (required unless -remote)")
		remote  = flag.String("remote", "", "check against a crrserve URL instead of a local rule file")
		repair  = flag.Bool("repair", false, "print a repaired value per violation")
		explain = flag.Bool("explain", false, "print the full rule-by-rule explanation per violation")
		limit   = flag.Int("limit", 20, "maximum violations to print (0 = all)")
	)
	flag.Parse()
	var violations int
	var err error
	if *remote != "" {
		violations, err = runRemote(*input, *remote, *repair, *limit, *explain)
	} else {
		violations, err = run(*input, *rulesIn, *repair, *limit, *explain)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "crrcheck:", err)
		os.Exit(2)
	}
	if violations > 0 {
		os.Exit(1)
	}
}

// runRemote checks the CSV against a served rule set through the SDK.
func runRemote(input, remote string, repair bool, limit int, explain bool) (int, error) {
	if input == "" {
		return 0, fmt.Errorf("-input is required (see -h)")
	}
	if explain {
		return 0, fmt.Errorf("-explain needs the local rule set; it is not available with -remote")
	}
	f, err := os.Open(input)
	if err != nil {
		return 0, err
	}
	rel, err := dataset.ReadCSV(f)
	f.Close()
	if err != nil {
		return 0, err
	}
	batch, err := cliutil.ClientBatch(rel)
	if err != nil {
		return 0, err
	}
	c := client.New(remote)
	info, err := c.Rules(context.Background())
	if err != nil {
		return 0, err
	}
	rep, err := c.Check(context.Background(), batch)
	if err != nil {
		return 0, err
	}
	fmt.Printf("checked %d tuples against %d rules: %d violation(s)\n",
		rep.Checked, info.Rules, len(rep.Violations))
	for i, v := range rep.Violations {
		if limit > 0 && i >= limit {
			fmt.Printf("... and %d more\n", len(rep.Violations)-limit)
			break
		}
		fmt.Printf("row %d: %s=%.6g but rule %d predicts %.6g (excess %.4g beyond ρ)",
			v.Tuple+1, info.Y, v.Observed, v.Rule+1, v.Predicted, v.Excess)
		if repair && v.Repair != nil {
			fmt.Printf("  → repair: %.6g", *v.Repair)
		}
		fmt.Println()
	}
	return len(rep.Violations), nil
}

func run(input, rulesIn string, repair bool, limit int, explain bool) (int, error) {
	if input == "" || rulesIn == "" {
		return 0, fmt.Errorf("-input and -rules are required (see -h)")
	}
	f, err := os.Open(input)
	if err != nil {
		return 0, err
	}
	rel, err := dataset.ReadCSV(f)
	f.Close()
	if err != nil {
		return 0, err
	}
	rf, err := os.Open(rulesIn)
	if err != nil {
		return 0, err
	}
	rules, err := core.ReadRuleSet(rf)
	rf.Close()
	if err != nil {
		return 0, err
	}
	if rel.Schema.Len() != rules.Schema.Len() {
		return 0, fmt.Errorf("schema mismatch: data has %d columns, rules expect %d",
			rel.Schema.Len(), rules.Schema.Len())
	}

	// One columnar mirror serves detection, repair suggestions and the
	// per-violation explanations.
	cs := dataset.NewColumnSet(rel)
	vs := core.ViolationsColumns(cs, rules)
	fmt.Printf("checked %d tuples against %d rules: %d violation(s)\n",
		rel.Len(), rules.NumRules(), len(vs))
	yName := rules.Schema.Attr(rules.YAttr).Name
	shown := len(vs)
	if limit > 0 && limit < shown {
		shown = limit
	}
	var explanations []core.Explanation
	if explain && shown > 0 {
		sel := make([]int, 0, shown)
		for _, v := range vs[:shown] {
			if len(sel) == 0 || sel[len(sel)-1] != v.TupleIndex {
				sel = append(sel, v.TupleIndex)
			}
		}
		explanations = core.ExplainView(&dataset.View{Cols: cs, Sel: sel}, rules)
		byRow := make(map[int]core.Explanation, len(sel))
		for i, r := range sel {
			byRow[r] = explanations[i]
		}
		explanations = explanations[:0]
		for _, v := range vs[:shown] {
			explanations = append(explanations, byRow[v.TupleIndex])
		}
	}
	for i, v := range vs {
		if limit > 0 && i >= limit {
			fmt.Printf("... and %d more\n", len(vs)-limit)
			break
		}
		fmt.Printf("row %d: %s=%.6g but rule %d predicts %.6g (excess %.4g beyond ρ)",
			v.TupleIndex+1, yName, v.Observed, v.RuleIndex+1, v.Predicted, v.Excess)
		if repair {
			if val, ok := core.Repair(rel.Tuples[v.TupleIndex], rules); ok {
				fmt.Printf("  → repair: %.6g", val)
			}
		}
		fmt.Println()
		if explain {
			fmt.Print(explanations[i].Format(rules))
		}
	}
	return len(vs), nil
}
