package main

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// discoverAndSave mines rules from a complete CSV and saves them, standing
// in for a `crrdiscover -save` invocation.
func discoverAndSave(csvPath, rulesPath string) error {
	f, err := os.Open(csvPath)
	if err != nil {
		return err
	}
	rel, err := dataset.ReadCSV(f)
	f.Close()
	if err != nil {
		return err
	}
	timeIdx, err := rel.Schema.Index("Time")
	if err != nil {
		return err
	}
	coIdx, err := rel.Schema.Index("CO")
	if err != nil {
		return err
	}
	preds := predicate.Generate(rel, []int{timeIdx}, predicate.GeneratorConfig{})
	res, err := core.Discover(context.Background(), rel, core.WithConfig(core.DiscoverConfig{
		XAttrs: []int{timeIdx}, YAttr: coIdx, RhoM: 1.0,
		Preds: preds, Trainer: regress.LinearTrainer{},
	}))
	if err != nil {
		return err
	}
	rules, _ := core.Compact(res.Rules)
	out, err := os.Create(rulesPath)
	if err != nil {
		return err
	}
	defer out.Close()
	return core.WriteRuleSet(out, rules)
}

// writeAirCSV writes an AirQuality CSV with a fraction of CO cells masked.
func writeAirCSV(t *testing.T, rows int, maskFrac float64) string {
	t.Helper()
	cfg := dataset.DefaultAirQualityConfig()
	cfg.Rows = rows
	rel := dataset.GenerateAirQuality(cfg)
	if maskFrac > 0 {
		rel.MaskMissing(rel.Schema.MustIndex("CO"), maskFrac, rand.New(rand.NewSource(1)))
	}
	path := filepath.Join(t.TempDir(), "air.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, rel); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunImputeEndToEnd(t *testing.T) {
	input := writeAirCSV(t, 600, 0.1)
	output := filepath.Join(t.TempDir(), "filled.csv")
	if err := run(context.Background(), input, output, "CO", "Time", 1.0, true, "", 1, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(output)
	if err != nil {
		t.Fatal(err)
	}
	// No empty CO cells remain (column 2 of the header Time,CO,...).
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 601 {
		t.Fatalf("output rows = %d, want 601", len(lines))
	}
	for i, line := range lines[1:] {
		cells := strings.Split(line, ",")
		if cells[1] == "" {
			t.Fatalf("row %d still missing CO", i+1)
		}
	}
}

func TestRunImputeWithSavedRules(t *testing.T) {
	// Discover + save on complete data via the crrdiscover flow is covered
	// elsewhere; here exercise the -rules load path with a hand-saved set.
	complete := writeAirCSV(t, 600, 0)
	rules := filepath.Join(t.TempDir(), "rules.json")
	// Reuse run() to discover and fill in-place first, then save via the
	// core API is cmd/crrdiscover's job — simulate with a quick discovery.
	if err := discoverAndSave(complete, rules); err != nil {
		t.Fatal(err)
	}
	masked := writeAirCSV(t, 600, 0.1)
	output := filepath.Join(t.TempDir(), "filled.csv")
	if err := run(context.Background(), masked, output, "CO", "Time", 1.0, true, rules, 1, 0); err != nil {
		t.Fatalf("run with -rules: %v", err)
	}
}

func TestRunImputeValidation(t *testing.T) {
	input := writeAirCSV(t, 100, 0.1)
	if err := run(context.Background(), "", "", "CO", "Time", 1, false, "", 1, 0); err == nil {
		t.Error("missing input accepted")
	}
	if err := run(context.Background(), input, "", "Nope", "Time", 1, false, "", 1, 0); err == nil {
		t.Error("unknown column accepted")
	}
	if err := run(context.Background(), input, "", "CO", "Nope", 1, false, "", 1, 0); err == nil {
		t.Error("unknown x accepted")
	}
	if err := run(context.Background(), input, "", "CO", "Time", 1, false, "/does/not/exist.json", 1, 0); err == nil {
		t.Error("missing rules file accepted")
	}
}
