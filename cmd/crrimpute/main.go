// Command crrimpute fills missing values in a CSV column using discovered
// conditional regression rules — the downstream case study of the paper's
// §VI-E.
//
// Usage:
//
//	crrimpute -input gaps.csv -output filled.csv -y Latitude -x Date -rho 1.0
//
// Missing cells are empty CSV fields. Rules are discovered on the complete
// rows, compacted, and applied to the incomplete ones.
//
// With -remote the rules live on a crrserve instance and the fill runs over
// HTTP through the Go SDK (binary columnar protocol, JSON fallback):
//
//	crrimpute -input gaps.csv -output filled.csv -remote http://localhost:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"github.com/crrlab/crr/internal/cliutil"
	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/impute"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/pkg/client"
)

func main() {
	var (
		input    = flag.String("input", "", "input CSV path (required)")
		output   = flag.String("output", "", "output CSV path (default: stdout)")
		yName    = flag.String("y", "", "column to impute (required unless -remote)")
		xNames   = flag.String("x", "", "comma-separated regression attributes (required unless -rules/-remote)")
		rhoM     = flag.Float64("rho", 1.0, "maximum bias ρ_M")
		fallback = flag.Bool("fallback", false, "fill uncovered cells with the training mean")
		rulesIn  = flag.String("rules", "", "load a saved rule set (crrdiscover -save) instead of discovering")
		remote   = flag.String("remote", "", "impute through a crrserve URL instead of local rules")
		workers  = flag.Int("workers", 1, "discovery worker count (1 = sequential, <0 = one per CPU)")
		seed     = flag.Int64("seed", 0, "random seed (predicate generation)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var err error
	if *remote != "" {
		err = runRemote(ctx, *input, *output, *yName, *remote, *fallback)
	} else {
		err = run(ctx, *input, *output, *yName, *xNames, *rhoM, *fallback, *rulesIn, *workers, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "crrimpute:", err)
		os.Exit(1)
	}
}

// runRemote fills the column through a served rule set. The target column
// defaults to the server's regression target when -y is not given.
func runRemote(ctx context.Context, input, output, yName, remote string, fallback bool) error {
	if input == "" {
		return fmt.Errorf("-input is required (see -h)")
	}
	f, err := os.Open(input)
	if err != nil {
		return err
	}
	rel, err := dataset.ReadCSV(f)
	f.Close()
	if err != nil {
		return err
	}
	batch, err := cliutil.ClientBatch(rel)
	if err != nil {
		return err
	}
	var opts []client.ImputeOption
	if yName != "" {
		opts = append(opts, client.WithColumn(yName))
	}
	if fallback {
		opts = append(opts, client.WithFallback())
	}
	c := client.New(remote)
	rep, err := c.Impute(ctx, batch, opts...)
	if err != nil {
		return err
	}
	filled, err := cliutil.RelationFromMaps(rel.Schema, rep.Tuples)
	if err != nil {
		return fmt.Errorf("rebuild imputed tuples: %w", err)
	}
	fmt.Fprintf(os.Stderr, "imputed %d cells (%d uncovered) in column %s via %s\n",
		rep.Imputed, rep.Failed, rep.Column, remote)
	out := os.Stdout
	if output != "" {
		out, err = os.Create(output)
		if err != nil {
			return err
		}
		defer out.Close()
	}
	return dataset.WriteCSV(out, filled)
}

func run(ctx context.Context, input, output, yName, xNames string, rhoM float64, fallback bool, rulesIn string, workers int, seed int64) error {
	if input == "" || yName == "" || xNames == "" {
		return fmt.Errorf("-input, -y and -x are required (see -h)")
	}
	f, err := os.Open(input)
	if err != nil {
		return err
	}
	rel, err := dataset.ReadCSV(f)
	f.Close()
	if err != nil {
		return err
	}
	yattr, err := rel.Schema.Index(yName)
	if err != nil {
		return err
	}
	var xattrs, cond []int
	for _, name := range strings.Split(xNames, ",") {
		i, err := rel.Schema.Index(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		xattrs = append(xattrs, i)
		cond = append(cond, i)
	}
	for i := 0; i < rel.Schema.Len(); i++ {
		if i != yattr && rel.Schema.Attr(i).Kind == dataset.Categorical {
			cond = append(cond, i)
		}
	}

	var rules *core.RuleSet
	if rulesIn != "" {
		rf, err := os.Open(rulesIn)
		if err != nil {
			return err
		}
		rules, err = core.ReadRuleSet(rf)
		rf.Close()
		if err != nil {
			return err
		}
	} else {
		preds := predicate.Generate(rel, cond, predicate.GeneratorConfig{Seed: seed})
		res, err := core.Discover(ctx, rel, core.WithConfig(core.DiscoverConfig{
			XAttrs:  xattrs,
			YAttr:   yattr,
			RhoM:    rhoM,
			Preds:   preds,
			Trainer: regress.LinearTrainer{},
			Seed:    seed,
			Workers: workers,
		}))
		if err != nil {
			return err
		}
		var cerr error
		rules, _, cerr = core.CompactCtx(ctx, res.Rules, core.CompactOptions{})
		if cerr != nil {
			return cerr
		}
	}

	stats, err := impute.Fill(rel, yattr, impute.RuleSetPredictor{Rules: rules, UseFallback: fallback})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "imputed %d cells (%d uncovered) with %d rules in %s\n",
		stats.Imputed, stats.Failed, rules.NumRules(), stats.Duration)

	out := os.Stdout
	if output != "" {
		out, err = os.Create(output)
		if err != nil {
			return err
		}
		defer out.Close()
	}
	return dataset.WriteCSV(out, rel)
}
