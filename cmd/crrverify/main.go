// Command crrverify runs the differential correctness harness
// (internal/verify) across the five evaluation dataset generators: the
// cross-engine discovery matrix, the row-vs-columnar classification parity
// checks, the codec round trip, compaction soundness replayed application by
// application, served-endpoint parity, and the metamorphic invariants.
//
// Usage:
//
//	crrverify                 # full matrix, 2000 rows per dataset
//	crrverify -quick          # 400 rows, serve + metamorphic suites skipped
//	crrverify -dataset Tax,Abalone -rows 1000 -json
//
// The exit status is 1 when any oracle diverges, so the command doubles as a
// CI gate. -json writes the machine-readable report; -metrics dumps the
// verify.* counters in the same Prometheus exposition crrserve serves.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/crrlab/crr/internal/eval"
	"github.com/crrlab/crr/internal/experiments"
	"github.com/crrlab/crr/internal/telemetry"
	"github.com/crrlab/crr/internal/verify"
)

func main() {
	var (
		rows     = flag.Int("rows", 2000, "rows generated per dataset")
		quick    = flag.Bool("quick", false, "smoke mode: 400 rows, serve and metamorphic suites skipped")
		datasets = flag.String("dataset", "", "comma-separated dataset subset (default: all five)")
		workers  = flag.Int("workers", 4, "parallel-engine width in the discovery matrix")
		seed     = flag.Int64("seed", 1, "seed for the metamorphic row permutation")
		predSize = flag.Int("preds", 64, "predicates per numeric attribute")
		jsonOut  = flag.Bool("json", false, "write the JSON report to stdout")
		metrics  = flag.String("metrics", "", "write the run's metrics in Prometheus text format to this path (\"-\" = stdout)")
		verbose  = flag.Bool("v", false, "log per-oracle-family progress")
		timeout  = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	failed, err := run(ctx, os.Stdout, runConfig{
		rows: *rows, quick: *quick, datasets: *datasets, workers: *workers,
		seed: *seed, predSize: *predSize, jsonOut: *jsonOut, metrics: *metrics,
		verbose: *verbose, timeout: *timeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crrverify:", err)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}

type runConfig struct {
	rows     int
	quick    bool
	datasets string
	workers  int
	seed     int64
	predSize int
	jsonOut  bool
	metrics  string
	verbose  bool
	timeout  time.Duration
}

// specs lists the five evaluation datasets in the paper's order.
func specs() []experiments.DatasetSpec {
	return []experiments.DatasetSpec{
		experiments.BirdMapSpec(),
		experiments.AirQualitySpec(),
		experiments.ElectricitySpec(),
		experiments.TaxSpec(),
		experiments.AbaloneSpec(),
	}
}

func run(ctx context.Context, w io.Writer, rc runConfig) (failed bool, err error) {
	if rc.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rc.timeout)
		defer cancel()
	}
	rows := rc.rows
	if rc.quick && !flagPassed("rows") {
		rows = 400
	}
	if rows <= 0 {
		return false, fmt.Errorf("-rows %d must be positive", rows)
	}

	keep := map[string]bool{}
	for _, name := range strings.Split(rc.datasets, ",") {
		if name = strings.TrimSpace(name); name != "" {
			keep[strings.ToLower(name)] = true
		}
	}
	var targets []verify.Target
	for _, spec := range specs() {
		if len(keep) > 0 && !keep[strings.ToLower(spec.Name)] {
			continue
		}
		targets = append(targets, verify.Target{
			Name:       spec.Name,
			Rel:        spec.Gen(rows),
			XAttrs:     spec.XAttrs,
			YAttr:      spec.YAttr,
			CondAttrs:  spec.CondAttrs,
			RhoM:       spec.RhoM,
			CompactTol: spec.CompactTol,
		})
	}
	if len(targets) == 0 {
		return false, fmt.Errorf("no datasets match %q (have %s)", rc.datasets, datasetNames())
	}

	reg := telemetry.New()
	opts := verify.Options{
		Workers:         rc.workers,
		Seed:            rc.seed,
		PredSize:        rc.predSize,
		SkipServe:       rc.quick,
		SkipMetamorphic: rc.quick,
		Telemetry:       reg,
	}
	if rc.verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "crrverify: "+format+"\n", args...)
		}
	}

	report, err := verify.Run(ctx, targets, opts)
	if err != nil {
		return false, err
	}

	if rc.jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return false, err
		}
	} else {
		table := eval.NewTable(fmt.Sprintf("crrverify (%d rows/dataset)", rows),
			"dataset", "rows", "rules", "compacted", "soundness apps", "oracles", "divergences")
		for _, dr := range report.Datasets {
			table.AddRowf(dr.Dataset, dr.Rows, dr.Rules, dr.CompactedRules,
				dr.SoundnessApps, dr.OraclesRun, len(dr.Divergences))
		}
		if err := table.Render(w); err != nil {
			return false, err
		}
		for _, dr := range report.Datasets {
			for _, d := range dr.Divergences {
				fmt.Fprintf(w, "DIVERGENCE %s %s: %s\n", d.Dataset, d.Oracle, d.Detail)
				if d.Reproducer != "" {
					fmt.Fprintf(w, "  reproducer: %s\n", d.Reproducer)
				}
			}
		}
		verdict := "OK"
		if report.Failed() {
			verdict = "FAILED"
		}
		fmt.Fprintf(w, "%s: %d oracle checks, %d divergences\n", verdict, report.OraclesRun, report.Divergences)
	}

	if rc.metrics != "" {
		if err := writeMetrics(w, rc.metrics, reg.Snapshot()); err != nil {
			return false, err
		}
	}
	return report.Failed(), nil
}

func datasetNames() string {
	var names []string
	for _, s := range specs() {
		names = append(names, s.Name)
	}
	return strings.Join(names, ", ")
}

// flagPassed reports whether the named flag was set explicitly.
func flagPassed(name string) bool {
	passed := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			passed = true
		}
	})
	return passed
}

// writeMetrics dumps the snapshot in the Prometheus text exposition, to path
// ("-" = the run's own output).
func writeMetrics(w io.Writer, path string, snap telemetry.Snapshot) error {
	if path == "-" {
		return snap.WriteText(w)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
