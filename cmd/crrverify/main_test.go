package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunQuickTax(t *testing.T) {
	var buf bytes.Buffer
	failed, err := run(context.Background(), &buf, runConfig{
		rows: 300, quick: true, datasets: "tax", workers: 2, seed: 1, predSize: 32,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if failed {
		t.Fatalf("harness reported divergences:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "OK:") {
		t.Errorf("output missing OK verdict:\n%s", out)
	}
	if !strings.Contains(out, "Tax") {
		t.Errorf("output missing dataset row:\n%s", out)
	}
}

func TestRunJSONAndMetrics(t *testing.T) {
	var buf bytes.Buffer
	failed, err := run(context.Background(), &buf, runConfig{
		rows: 200, quick: true, datasets: "abalone", workers: 1, seed: 1, predSize: 16,
		jsonOut: true, metrics: "-",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if failed {
		t.Fatalf("harness reported divergences:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, `"divergences"`) {
		t.Errorf("JSON report missing divergences field:\n%s", out)
	}
	if !strings.Contains(out, "crr_verify_oracles_run") {
		t.Errorf("metrics exposition missing verify counter:\n%s", out)
	}
}

func TestRunUnknownDataset(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(context.Background(), &buf, runConfig{rows: 100, datasets: "nosuch"}); err == nil {
		t.Fatal("expected an error for an unknown dataset name")
	}
}

func TestRunRejectsNonPositiveRows(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(context.Background(), &buf, runConfig{rows: -1}); err == nil {
		t.Fatal("expected an error for -rows -1")
	}
}
