package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// writeTaxArtifact discovers a small rule set over a Tax sample and writes
// it as the JSON artifact crrstream maintains.
func writeTaxArtifact(t *testing.T, dir string) (string, *dataset.Relation) {
	t.Helper()
	cfg := dataset.DefaultTaxConfig()
	cfg.Rows = 400
	rel := dataset.GenerateTax(cfg)
	xattrs := []int{mustIndex(t, rel.Schema, "Salary")}
	yattr := mustIndex(t, rel.Schema, "Tax")
	cond := []int{mustIndex(t, rel.Schema, "State"), mustIndex(t, rel.Schema, "MaritalStatus")}
	preds := predicate.Generate(rel, cond, predicate.GeneratorConfig{Kind: predicate.Binary, Size: 32})
	res, err := core.Discover(context.Background(), rel, core.WithConfig(core.DiscoverConfig{
		XAttrs: xattrs, YAttr: yattr, RhoM: 60, Preds: preds, Trainer: regress.LinearTrainer{},
	}))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "rules.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := core.WriteRuleSet(f, res.Rules); err != nil {
		t.Fatal(err)
	}
	return path, rel
}

func mustIndex(t *testing.T, s *dataset.Schema, name string) int {
	t.Helper()
	i, err := s.Index(name)
	if err != nil {
		t.Fatal(err)
	}
	return i
}

// TestRunStreamEndToEnd: a well-formed feed replays against the artifact.
func TestRunStreamEndToEnd(t *testing.T) {
	dir := t.TempDir()
	rulesPath, rel := writeTaxArtifact(t, dir)
	feed := filepath.Join(dir, "feed.csv")
	f, err := os.Create(feed)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, rel); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, runConfig{
		input: feed, rulesPath: rulesPath, window: 128, swapEvery: 0,
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunStreamCorruptCSVDiagnostic: a malformed feed must come back as a
// typed dataset.ErrMalformedCSV through run's error return — the diagnostic
// main prints before exit 1 — never a panic or stack trace.
func TestRunStreamCorruptCSVDiagnostic(t *testing.T) {
	dir := t.TempDir()
	rulesPath, _ := writeTaxArtifact(t, dir)
	cases := map[string]string{
		"ragged":          "Salary,Tax\n100,5\n200\n",
		"truncated quote": "Salary,Tax\n\"unterminated,5\n",
		"empty":           "",
	}
	for name, body := range cases {
		feed := filepath.Join(t.TempDir(), "bad.csv")
		if err := os.WriteFile(feed, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		err := run(context.Background(), &buf, runConfig{
			input: feed, rulesPath: rulesPath, window: 128,
		})
		if !errors.Is(err, dataset.ErrMalformedCSV) {
			t.Errorf("%s: err = %v, want ErrMalformedCSV", name, err)
		}
	}
}
