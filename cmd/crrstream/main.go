// Command crrstream replays a CSV as a live row stream against a discovered
// rule-set artifact: rows enter a sliding window, per-rule sufficient
// statistics absorb them rank-1, drifting rules are re-fit or retired
// (internal/stream), and refreshed rule sets are periodically swapped out —
// to a JSON artifact on disk (-save), to a running crrserve via its hot
// reload endpoint (-push), or both.
//
// Usage:
//
//	crrstream -input feed.csv -rules rules.json -window 2048
//	crrstream -input feed.csv -rules rules.json -window 2048 \
//	    -rate 500 -swap-every 1000 -push http://127.0.0.1:8080
//
// The CSV must carry the artifact's schema (same header, same column kinds) —
// crrstream refuses a mismatched feed rather than guessing a column mapping.
// -rate throttles the replay to N rows/second (0 replays as fast as the
// maintainer accepts). A telemetry summary — rows ingested, refits, drift
// events, retires, swaps — is printed after the run, with the same stream.*
// metric names crrserve exposes.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/eval"
	"github.com/crrlab/crr/internal/stream"
	"github.com/crrlab/crr/internal/telemetry"
)

func main() {
	var (
		input     = flag.String("input", "", "input CSV path replayed as the stream (required)")
		rulesPath = flag.String("rules", "", "rule-set artifact to maintain (crrdiscover -save) (required)")
		window    = flag.Int("window", 2048, "sliding-window capacity in rows")
		rate      = flag.Float64("rate", 0, "replay rate in rows/second (0 = unthrottled)")
		warmup    = flag.Int("warmup", 0, "rows ingested before the first swap is considered")
		swapEvery = flag.Int("swap-every", 1000, "consider a swap after this many rows (0 = only at end of stream)")
		rhoM      = flag.Float64("rho", 0, "maximum tolerable bias ρ_M; pass the bound discovery ran with (0 = 1.5 × the artifact's largest ρ, a generous allowance for window-sampling wobble)")
		alpha     = flag.Float64("alpha", 0, "Chow-test significance for drift detection (default 0.001)")
		push      = flag.String("push", "", "crrserve base URL to hot-swap refreshed rule sets into (POST /v1/reload)")
		save      = flag.String("save", "", "write each refreshed rule set as JSON to this path")
		metrics   = flag.String("metrics", "", "write the run's metrics in Prometheus text format to this path (\"-\" = stdout)")
		verbose   = flag.Bool("v", false, "log per-swap progress")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Stdout, runConfig{
		input: *input, rulesPath: *rulesPath, window: *window, rate: *rate,
		warmup: *warmup, swapEvery: *swapEvery, rhoM: *rhoM, alpha: *alpha,
		push: *push, save: *save, metrics: *metrics, verbose: *verbose,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "crrstream:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	input, rulesPath  string
	window            int
	rate              float64
	warmup, swapEvery int
	rhoM, alpha       float64
	push, save        string
	metrics           string
	verbose           bool
}

func run(ctx context.Context, w io.Writer, rc runConfig) error {
	if rc.input == "" || rc.rulesPath == "" {
		return fmt.Errorf("-input and -rules are required (see -h)")
	}
	rf, err := os.Open(rc.rulesPath)
	if err != nil {
		return err
	}
	rules, err := core.ReadRuleSet(rf)
	rf.Close()
	if err != nil {
		return err
	}
	f, err := os.Open(rc.input)
	if err != nil {
		return err
	}
	defer f.Close()
	rel, err := dataset.ReadCSV(f)
	if err != nil {
		return err
	}
	if err := schemasMatch(rules.Schema, rel.Schema); err != nil {
		return fmt.Errorf("feed does not carry the artifact's schema: %w", err)
	}

	rho := rc.rhoM
	if rho == 0 {
		// Without the discovery bound, allow headroom above the artifact's
		// worst empirical ρ: a window's least-squares refit minimizes SSE,
		// not max residual, so its ρ wobbles with the window's sampling mix
		// and a tight bound would retire healthy rules.
		for i := range rules.Rules {
			if r := rules.Rules[i].Rho; r > rho {
				rho = r
			}
		}
		rho *= 1.5
		if rho == 0 {
			return fmt.Errorf("artifact carries only ρ=0 rules; pass -rho explicitly")
		}
	}
	reg := telemetry.New()
	cfg := stream.Config{Window: rc.window, RhoM: rho, Alpha: rc.alpha, Registry: reg}
	if rc.verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "crrstream: "+format+"\n", args...)
		}
	}
	m, err := stream.New(rules, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "maintaining %d rules (y=%s, ρM=%.4g) over a %d-row window, %d-row feed\n",
		rules.NumRules(), rules.YName(), rho, rc.window, rel.Len())

	var throttle <-chan time.Time
	if rc.rate > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / rc.rate))
		defer t.Stop()
		throttle = t.C
	}
	swaps := 0
	for i, tp := range rel.Tuples {
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(w, "interrupted after %d rows\n", i)
			break
		}
		if throttle != nil {
			<-throttle
		}
		if err := m.Append(tp); err != nil {
			return fmt.Errorf("row %d: %w", i+1, err)
		}
		if rc.swapEvery > 0 && i+1 > rc.warmup && (i+1)%rc.swapEvery == 0 {
			n, err := maybeSwap(w, m, rc, i+1)
			if err != nil {
				return err
			}
			swaps += n
		}
	}
	// Final flush: publish the end-of-stream state even off the swap cadence.
	n, err := maybeSwap(w, m, rc, rel.Len())
	if err != nil {
		return err
	}
	swaps += n

	st := m.Stats()
	fmt.Fprintf(w, "\ningested %d rows: %d refits, %d drift events, %d retires, %d rebuilds, %d swaps\n",
		st.RowsIngested, st.Refits, st.DriftEvents, st.Retires, st.Rebuilds, swaps)
	fmt.Fprintf(w, "live rules %d of %d, window coverage %.3f\n",
		m.Live(), rules.NumRules(), m.Coverage())
	for _, line := range eval.TelemetrySummary(reg.Snapshot()) {
		fmt.Fprintln(w, line)
	}
	if rc.metrics != "" {
		if err := writeMetrics(w, rc.metrics, reg.Snapshot()); err != nil {
			return err
		}
	}
	return nil
}

// maybeSwap flushes pending refits and, when anything changed since the last
// snapshot, publishes a refreshed rule set to every configured sink. Returns
// the number of swaps performed (0 or 1).
func maybeSwap(w io.Writer, m *stream.Maintainer, rc runConfig, row int) (int, error) {
	m.Refit()
	if !m.Changed() {
		return 0, nil
	}
	snap := m.Snapshot()
	if rc.save != "" {
		out, err := os.Create(rc.save)
		if err != nil {
			return 0, err
		}
		if err := core.WriteRuleSet(out, snap); err != nil {
			out.Close()
			return 0, err
		}
		if err := out.Close(); err != nil {
			return 0, err
		}
	}
	if rc.push != "" {
		if err := pushReload(rc.push, snap); err != nil {
			return 0, fmt.Errorf("push at row %d: %w", row, err)
		}
	}
	if rc.verbose {
		fmt.Fprintf(w, "row %d: swapped %d live rules\n", row, snap.NumRules())
	}
	return 1, nil
}

// pushReload hot-swaps the rule set into a crrserve instance through its
// body-carrying reload endpoint.
func pushReload(base string, rules *core.RuleSet) error {
	var body bytes.Buffer
	if err := core.WriteRuleSet(&body, rules); err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/reload", "application/json", &body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("reload rejected: %s: %s", resp.Status, msg)
	}
	return nil
}

// schemasMatch requires the feed to carry exactly the artifact's columns:
// same arity, names and kinds, in order.
func schemasMatch(want, got *dataset.Schema) error {
	if want.Len() != got.Len() {
		return fmt.Errorf("artifact has %d columns, feed has %d", want.Len(), got.Len())
	}
	for i := 0; i < want.Len(); i++ {
		wa, ga := want.Attr(i), got.Attr(i)
		if wa.Name != ga.Name {
			return fmt.Errorf("column %d is %q, artifact wants %q", i, ga.Name, wa.Name)
		}
		if wa.Kind != ga.Kind {
			return fmt.Errorf("column %q kind mismatch (feed inferred %v, artifact wants %v)", wa.Name, ga.Kind, wa.Kind)
		}
	}
	return nil
}

// writeMetrics dumps the snapshot in the Prometheus text exposition, to path
// ("-" = the run's own output).
func writeMetrics(w io.Writer, path string, snap telemetry.Snapshot) error {
	if path == "-" {
		return snap.WriteText(w)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
