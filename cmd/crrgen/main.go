// Command crrgen writes one of the synthetic benchmark datasets as CSV, so
// the crrdiscover → crrserve pipeline (and the CI smoke test) can run without
// the throwaway generator program from the tutorial.
//
// Usage:
//
//	crrgen -gen tax -rows 5000 -out tax.csv
//	crrgen -gen electricity -rows 20000 -out power.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/crrlab/crr/internal/dataset"
)

func main() {
	var (
		gen  = flag.String("gen", "tax", "dataset: tax or electricity")
		rows = flag.Int("rows", 5000, "number of tuples")
		seed = flag.Int64("seed", 1, "random seed")
		out  = flag.String("out", "", "output CSV path (default: stdout)")
	)
	flag.Parse()
	if err := run(*gen, *rows, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "crrgen:", err)
		os.Exit(1)
	}
}

func run(gen string, rows int, seed int64, out string) error {
	var rel *dataset.Relation
	switch gen {
	case "tax":
		cfg := dataset.DefaultTaxConfig()
		cfg.Rows = rows
		cfg.Seed = seed
		rel = dataset.GenerateTax(cfg)
	case "electricity":
		cfg := dataset.DefaultElectricityConfig()
		cfg.Rows = rows
		cfg.Seed = seed
		rel = dataset.GenerateElectricity(cfg)
	default:
		return fmt.Errorf("unknown dataset %q (tax, electricity)", gen)
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return dataset.WriteCSV(w, rel)
}
