// Command crrgen writes one of the synthetic benchmark datasets as CSV, so
// the crrdiscover → crrserve pipeline (and the CI smoke test) can run without
// the throwaway generator program from the tutorial.
//
// Usage:
//
//	crrgen -gen tax -rows 5000 -out tax.csv
//	crrgen -gen electricity -rows 20000 -out power.csv
//	crrgen -gen birdmap -rows 8000 -seed 7 -out birds.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/crrlab/crr/internal/dataset"
)

// generators dispatches -gen to the five synthetic evaluation datasets; one
// table serves the flag help, the error message and the dispatch.
var generators = map[string]func(rows int, seed int64) *dataset.Relation{
	"tax": func(rows int, seed int64) *dataset.Relation {
		cfg := dataset.DefaultTaxConfig()
		cfg.Rows, cfg.Seed = rows, seed
		return dataset.GenerateTax(cfg)
	},
	"electricity": func(rows int, seed int64) *dataset.Relation {
		cfg := dataset.DefaultElectricityConfig()
		cfg.Rows, cfg.Seed = rows, seed
		return dataset.GenerateElectricity(cfg)
	},
	"abalone": func(rows int, seed int64) *dataset.Relation {
		cfg := dataset.DefaultAbaloneConfig()
		cfg.Rows, cfg.Seed = rows, seed
		return dataset.GenerateAbalone(cfg)
	},
	"airquality": func(rows int, seed int64) *dataset.Relation {
		cfg := dataset.DefaultAirQualityConfig()
		cfg.Rows, cfg.Seed = rows, seed
		return dataset.GenerateAirQuality(cfg)
	},
	"birdmap": func(rows int, seed int64) *dataset.Relation {
		cfg := dataset.DefaultBirdMapConfig()
		cfg.Rows, cfg.Seed = rows, seed
		return dataset.GenerateBirdMap(cfg)
	},
}

// genNames returns the sorted dataset names for help and error text.
func genNames() string {
	names := make([]string, 0, len(generators))
	for name := range generators {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func main() {
	var (
		gen  = flag.String("gen", "tax", "dataset: "+genNames())
		rows = flag.Int("rows", 5000, "number of tuples")
		seed = flag.Int64("seed", 1, "random seed")
		out  = flag.String("out", "", "output CSV path (default: stdout)")
	)
	flag.Parse()
	if err := run(*gen, *rows, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "crrgen:", err)
		os.Exit(1)
	}
}

func run(gen string, rows int, seed int64, out string) error {
	generate, ok := generators[gen]
	if !ok {
		return fmt.Errorf("unknown dataset %q (%s)", gen, genNames())
	}
	rel := generate(rows, seed)
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return dataset.WriteCSV(w, rel)
}
