// Command crrgen writes one of the synthetic benchmark datasets as CSV, so
// the crrdiscover → crrserve pipeline (and the CI smoke test) can run without
// the throwaway generator program from the tutorial.
//
// With -store it instead streams the dataset into an out-of-core column
// store (internal/colstore) one chunk at a time, so datasets far past RAM
// can be materialized: chunk i is generated independently with seed+i and
// appended, keeping peak memory at one chunk's worth of tuples.
//
// Usage:
//
//	crrgen -gen tax -rows 5000 -out tax.csv
//	crrgen -gen electricity -rows 20000 -out power.csv
//	crrgen -gen birdmap -rows 8000 -seed 7 -out birds.csv
//	crrgen -gen electricity -rows 10000000 -store power.crrcol
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/crrlab/crr/internal/colstore"
	"github.com/crrlab/crr/internal/dataset"
)

// generators dispatches -gen to the five synthetic evaluation datasets; one
// table serves the flag help, the error message and the dispatch.
var generators = map[string]func(rows int, seed int64) *dataset.Relation{
	"tax": func(rows int, seed int64) *dataset.Relation {
		cfg := dataset.DefaultTaxConfig()
		cfg.Rows, cfg.Seed = rows, seed
		return dataset.GenerateTax(cfg)
	},
	"electricity": func(rows int, seed int64) *dataset.Relation {
		cfg := dataset.DefaultElectricityConfig()
		cfg.Rows, cfg.Seed = rows, seed
		return dataset.GenerateElectricity(cfg)
	},
	"abalone": func(rows int, seed int64) *dataset.Relation {
		cfg := dataset.DefaultAbaloneConfig()
		cfg.Rows, cfg.Seed = rows, seed
		return dataset.GenerateAbalone(cfg)
	},
	"airquality": func(rows int, seed int64) *dataset.Relation {
		cfg := dataset.DefaultAirQualityConfig()
		cfg.Rows, cfg.Seed = rows, seed
		return dataset.GenerateAirQuality(cfg)
	},
	"birdmap": func(rows int, seed int64) *dataset.Relation {
		cfg := dataset.DefaultBirdMapConfig()
		cfg.Rows, cfg.Seed = rows, seed
		return dataset.GenerateBirdMap(cfg)
	},
}

// genNames returns the sorted dataset names for help and error text.
func genNames() string {
	names := make([]string, 0, len(generators))
	for name := range generators {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func main() {
	var (
		gen   = flag.String("gen", "tax", "dataset: "+genNames())
		rows  = flag.Int("rows", 5000, "number of tuples")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", "", "output CSV path (default: stdout)")
		store = flag.String("store", "", "write an out-of-core column store at this directory instead of CSV")
		chunk = flag.Int("chunk", 0, "store build chunk rows (0 = default)")
	)
	flag.Parse()
	var err error
	if *store != "" {
		err = runStore(*gen, *rows, *seed, *store, *chunk)
	} else {
		err = run(*gen, *rows, *seed, *out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "crrgen:", err)
		os.Exit(1)
	}
}

// runStore streams the dataset into a column store chunk by chunk: chunk i
// regenerates with seed+i, so memory stays bounded by one chunk while the
// store grows to any -rows.
func runStore(gen string, rows int, seed int64, dir string, chunkRows int) error {
	generate, ok := generators[gen]
	if !ok {
		return fmt.Errorf("unknown dataset %q (%s)", gen, genNames())
	}
	if chunkRows <= 0 {
		chunkRows = colstore.DefaultChunkRows
	}
	probe := generate(1, seed)
	b, err := colstore.NewBuilder(dir, probe.Schema, colstore.BuilderOptions{ChunkRows: chunkRows})
	if err != nil {
		return err
	}
	for i, written := 0, 0; written < rows; i++ {
		n := rows - written
		if n > chunkRows {
			n = chunkRows
		}
		part := generate(n, seed+int64(i))
		if err := b.AppendRelation(part); err != nil {
			b.Abort()
			return err
		}
		written += n
	}
	return b.Finish()
}

func run(gen string, rows int, seed int64, out string) error {
	generate, ok := generators[gen]
	if !ok {
		return fmt.Errorf("unknown dataset %q (%s)", gen, genNames())
	}
	rel := generate(rows, seed)
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return dataset.WriteCSV(w, rel)
}
