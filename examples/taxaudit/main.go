// Tax audit: the paper's relational scenario (§IV's f4/f5 example). Discover
// state-conditional tax formulas, watch Translation unify states whose
// formulas differ only by a constant (f5(Salary) = f4(Salary) − 230), and
// use the rules as integrity constraints to flag suspicious records.
//
//	go run ./examples/taxaudit
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

func main() {
	cfg := dataset.DefaultTaxConfig()
	cfg.Rows = 6000
	rel := dataset.GenerateTax(cfg)
	schema := rel.Schema
	salary := schema.MustIndex("Salary")
	state := schema.MustIndex("State")
	status := schema.MustIndex("MaritalStatus")
	tax := schema.MustIndex("Tax")

	preds := predicate.Generate(rel, []int{state, status}, predicate.GeneratorConfig{})
	res, err := core.Discover(context.Background(), rel, core.WithConfig(core.DiscoverConfig{
		XAttrs:  []int{salary},
		YAttr:   tax,
		RhoM:    60,
		Preds:   preds,
		Trainer: regress.LinearTrainer{},
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Algorithm 1: %d per-state rules\n", res.Rules.NumRules())

	// Model sharing in Algorithm 1 may already have reused one state's model
	// for another (with a y = δ builtin); compaction then only needs Fusion.
	// Translation fires for formulas that were trained independently.
	rules, stats := core.CompactOpts(res.Rules, core.CompactOptions{ModelTol: 0.002})
	fmt.Printf("Algorithm 2: %d rules (%d translations, %d fusions)\n\n",
		rules.NumRules(), stats.Translations, stats.Fusions)

	for i := range rules.Rules {
		r := &rules.Rules[i]
		lin := r.Model.(*regress.Linear)
		fmt.Printf("φ%d: rate %.4f, ρ=%.1f, covers %d state/status groups\n",
			i+1, lin.W[1], r.Rho, len(r.Cond.Conjs))
	}

	// CRRs as integrity constraints: every clean record satisfies every rule;
	// a doctored record violates the rule that covers it.
	clean := 0
	for _, t := range rel.Tuples {
		ok := true
		for i := range rules.Rules {
			if !rules.Rules[i].Sat(t) {
				ok = false
				break
			}
		}
		if ok {
			clean++
		}
	}
	fmt.Printf("\n%d/%d records satisfy all rules\n", clean, rel.Len())

	rng := rand.New(rand.NewSource(42))
	doctored := rel.Tuples[rng.Intn(rel.Len())].Clone()
	doctored[tax] = dataset.Num(doctored[tax].Num - 2000) // under-reported tax
	violated := 0
	for i := range rules.Rules {
		if !rules.Rules[i].Sat(doctored) {
			violated++
		}
	}
	fmt.Printf("doctored record (tax −2000 in %s): violates %d rule(s) → flagged for audit\n",
		doctored[state].Str, violated)
}
