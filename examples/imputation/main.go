// Imputation: the paper's downstream case study (§VI-E, Fig. 10). Mask 10%
// of the AirQuality CO readings, discover CRRs on the remaining data, and
// compare imputation with the raw rule set against the compacted one: same
// accuracy, fewer rules, faster lookups.
//
//	go run ./examples/imputation
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/impute"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

func main() {
	cfg := dataset.DefaultAirQualityConfig()
	cfg.Rows = 3000
	original := dataset.GenerateAirQuality(cfg)
	timeAttr := original.Schema.MustIndex("Time")
	co := original.Schema.MustIndex("CO")

	masked := original.Clone()
	holes := masked.MaskMissing(co, 0.10, rand.New(rand.NewSource(7)))
	fmt.Printf("masked %d of %d CO readings\n\n", len(holes), original.Len())

	preds := predicate.Generate(masked, []int{timeAttr}, predicate.GeneratorConfig{})
	res, err := core.Discover(context.Background(), masked, core.WithConfig(core.DiscoverConfig{
		XAttrs:  []int{timeAttr},
		YAttr:   co,
		RhoM:    1.0,
		Preds:   preds,
		Trainer: regress.LinearTrainer{},
	}))
	if err != nil {
		log.Fatal(err)
	}
	compacted, _ := core.CompactOpts(res.Rules, core.CompactOptions{ModelTol: 0.05})

	for _, variant := range []struct {
		name  string
		rules *core.RuleSet
	}{
		{"raw rules     ", res.Rules},
		{"compacted     ", compacted},
	} {
		rmse, st, err := impute.Evaluate(masked, original, co, holes,
			impute.RuleSetPredictor{Rules: variant.rules, UseFallback: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s %4d rules   imputation RMSE %.4f   time %s\n",
			variant.name, variant.rules.NumRules(), rmse, st.Duration)
	}

	// Fill the holes in place for downstream use.
	st, err := impute.Fill(masked, co, impute.RuleSetPredictor{Rules: compacted, UseFallback: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfilled %d cells (%d uncovered)\n", st.Imputed, st.Failed)
}
