// Power monitor: CRRs as a streaming data-quality monitor on the
// Electricity stand-in. A derived minute-of-day attribute makes the daily
// appliance regimes recur into the same condition windows, so rules
// discovered on a warm-up window keep covering every later day: arriving
// days are checked for violations (meter faults) and absorbed by incremental
// maintenance without retraining.
//
//	go run ./examples/powermonitor
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

func main() {
	cfg := dataset.DefaultElectricityConfig()
	cfg.Rows = 7 * 1440 // one week of minutes
	raw := dataset.GenerateElectricity(cfg)

	// Feature engineering: minute-of-day phase, the recurrence axis.
	rawTime := raw.Schema.MustIndex("Time")
	week, err := dataset.DeriveNumeric(raw, "MinuteOfDay", func(t dataset.Tuple) (float64, bool) {
		if t[rawTime].Null {
			return 0, false
		}
		return math.Mod(t[rawTime].Num, 1440), true
	})
	if err != nil {
		log.Fatal(err)
	}
	schema := week.Schema
	mod := schema.MustIndex("MinuteOfDay")
	gap := schema.MustIndex("GlobalActivePower")

	// Warm-up: discover rules on the first two days, conditioned on phase.
	warm := dataset.NewRelation(schema)
	for _, t := range week.Tuples {
		if t[0].Num < 2*1440 {
			warm.Tuples = append(warm.Tuples, t)
		}
	}
	preds := predicate.Generate(warm, []int{mod}, predicate.GeneratorConfig{})
	dcfg := core.DiscoverConfig{
		XAttrs:     []int{mod},
		YAttr:      gap,
		RhoM:       0.5,
		Preds:      preds,
		Trainer:    regress.LinearTrainer{},
		FuseShared: true, // regimes sharing a model merge into one DNF rule
	}
	res, err := core.Discover(context.Background(), warm, core.WithConfig(dcfg))
	if err != nil {
		log.Fatal(err)
	}
	rules := res.Rules
	fmt.Printf("warm-up: %d rule(s), %d distinct regime model(s), %d share hits\n\n",
		rules.NumRules(), rules.NumModels(), res.Stats.ShareHits)

	// Stream the remaining days.
	stream := dataset.NewRelation(schema)
	stream.Tuples = append(stream.Tuples, warm.Tuples...)
	for day := 2; day < 7; day++ {
		start := stream.Len()
		injected := 0
		for _, t := range week.Tuples {
			m := t[0].Num
			if m < float64(day)*1440 || m >= float64(day+1)*1440 {
				continue
			}
			// Inject a stuck-meter fault on day 5, 12:00–12:30.
			if day == 5 && t[mod].Num >= 720 && t[mod].Num < 750 {
				t = t.Clone()
				t[gap] = dataset.Num(9.99)
				injected++
			}
			stream.Tuples = append(stream.Tuples, t)
		}

		// 1) Constraint check: flag the day's violations before ingesting.
		arrived := &dataset.Relation{Schema: schema, Tuples: stream.Tuples[start:]}
		violations := core.Violations(arrived, rules)

		// 2) Quarantine the violating tuples — ingesting a meter fault would
		//    mint a rule that legitimizes it — then maintain on the rest.
		quarantined := map[int]bool{}
		for _, v := range violations {
			quarantined[start+v.TupleIndex] = true
		}
		var newIdx []int
		for i := start; i < stream.Len(); i++ {
			if !quarantined[i] {
				newIdx = append(newIdx, i)
			}
		}
		updated, st, err := core.Maintain(context.Background(), stream, rules, newIdx, dcfg)
		if err != nil {
			log.Fatal(err)
		}
		rules = updated
		fmt.Printf("day %d: %4d tuples  %3d violations (injected faults: %2d)  "+
			"%4d satisfied / %d widened / %d rediscovered / %d conflicts\n",
			day, len(newIdx), len(violations), injected,
			st.Satisfied, st.Widened, st.Rediscovered, st.Conflicts)
	}

	fmt.Printf("\nfinal: %d rule(s), %d model(s) for a full week — the warm-up regimes "+
		"served every recurring day\n", rules.NumRules(), rules.NumModels())
}
