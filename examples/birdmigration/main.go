// Bird migration: the paper's motivating scenario (Example 1–2). Discover
// CRRs on the synthetic BirdMap stand-in and observe the two phenomena CRRs
// exist for: constant-latitude breeding plateaus (the "Latitude = 60.10"
// rule) and migration ramps recurring every year, captured by model sharing
// and merged into DNF conditions with y = δ builtins by compaction.
//
//	go run ./examples/birdmigration
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

func main() {
	cfg := dataset.DefaultBirdMapConfig()
	cfg.Rows = 4000
	rel := dataset.GenerateBirdMap(cfg)
	schema := rel.Schema
	dateAttr := schema.MustIndex("Date")
	latAttr := schema.MustIndex("Latitude")
	birdAttr := schema.MustIndex("BirdID")

	fmt.Printf("BirdMap stand-in: %d GPS fixes, %d birds, %d years\n\n",
		rel.Len(), cfg.Birds, cfg.Years)

	// Conditions range over the observation date and the bird identity.
	preds := predicate.Generate(rel, []int{dateAttr, birdAttr}, predicate.GeneratorConfig{})

	res, err := core.Discover(context.Background(), rel, core.WithConfig(core.DiscoverConfig{
		XAttrs:  []int{dateAttr},
		YAttr:   latAttr,
		RhoM:    1.0,
		Preds:   preds,
		Trainer: regress.LinearTrainer{},
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Algorithm 1: %d rules, %d via model sharing, %d models trained\n",
		res.Rules.NumRules(), res.Stats.ShareHits, res.Stats.ModelsTrained)

	rules, stats := core.CompactOpts(res.Rules, core.CompactOptions{ModelTol: 0.02})
	fmt.Printf("Algorithm 2: %d rules after %d translations and %d fusions\n\n",
		rules.NumRules(), stats.Translations, stats.Fusions)

	// Classify the compacted rules the way Example 2 does.
	for i := range rules.Rules {
		r := &rules.Rules[i]
		kind := "migration ramp"
		if lin, ok := r.Model.(*regress.Linear); ok && lin.IsConstant(0.01) {
			kind = "breeding/wintering plateau (constant latitude)"
		}
		shifts := 0
		for _, c := range r.Cond.Conjs {
			if !c.Builtin.IsZero() {
				shifts++
			}
		}
		fmt.Printf("φ%d [%s] ρ=%.3f, %d condition windows (%d with y=δ translation)\n",
			i+1, kind, r.Rho, len(r.Cond.Conjs), shifts)
	}

	fmt.Printf("\ncoverage %.3f, RMSE %.4f — one rule now serves every year it recurs in\n",
		rules.Coverage(rel), rules.RMSE(rel))

	// Impute a missing location the way t6 in Table I needs.
	day := 2*dataset.YearLength + 200 // breeding season of year 3
	probe := dataset.Tuple{dataset.Null(), dataset.Null(), dataset.Str("2.Maria"), dataset.Num(day)}
	if lat, ok := rules.Predict(probe); ok {
		fmt.Printf("imputed Latitude for 2.Maria on day %.0f: %.3f\n", day, lat)
	}
}
