// Quickstart: discover conditional regression rules on a tiny two-regime
// dataset, inspect them, and use them to predict.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

func main() {
	// A mixed data distribution: y = 2x+1 below x=50, y = 2x+31 above x=100
	// (the same slope, shifted — a sharing opportunity), and y = −3x+500 in
	// between. Noise is bounded, as CRR's max-bias semantics require.
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "X", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Y", Kind: dataset.Numeric},
	)
	rel := dataset.NewRelation(schema)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 900; i++ {
		x := 150 * float64(i) / 900
		var y float64
		switch {
		case x < 50:
			y = 2*x + 1
		case x < 100:
			y = -3*x + 500
		default:
			y = 2*x + 31
		}
		rel.MustAppend(dataset.Tuple{
			dataset.Num(x),
			dataset.Num(y + 0.2*(2*rng.Float64()-1)),
		})
	}

	// The predicate space ℙ: a {>, ≤} pair at every distinct X value (the
	// paper's default).
	preds := predicate.Generate(rel, []int{0}, predicate.GeneratorConfig{})

	// Algorithm 1: CRR searching with model sharing.
	res, err := core.Discover(context.Background(), rel, core.WithConfig(core.DiscoverConfig{
		XAttrs:  []int{0},
		YAttr:   1,
		RhoM:    0.5,
		Preds:   preds,
		Trainer: regress.LinearTrainer{},
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Algorithm 1 found %d rules; %d parts reused an existing model\n",
		res.Rules.NumRules(), res.Stats.ShareHits)

	// Algorithm 2: compaction via Translation + Generalization + Fusion.
	rules, stats := core.Compact(res.Rules)
	fmt.Printf("Algorithm 2 compacted to %d rules (%d translations, %d fusions)\n",
		rules.NumRules(), stats.Translations, stats.Fusions)

	// Touching windows whose y = δ shifts agree within ρ_M/10 collapse into
	// one window each (ρ widens by the δ spread — sound by Generalization).
	rules = core.MergeWindows(rules, 0.05)
	fmt.Printf("window merging left %s\n\n", core.Summarize(rules))

	for i := range rules.Rules {
		fmt.Printf("φ%d: %s\n", i+1, rules.Rules[i].Format(schema))
	}

	// Predict with the rule set.
	fmt.Println()
	for _, x := range []float64{10, 75, 120} {
		pred, covered := rules.Predict(dataset.Tuple{dataset.Num(x), dataset.Null()})
		fmt.Printf("x = %5.1f → ŷ = %7.2f (covered: %v)\n", x, pred, covered)
	}
	fmt.Printf("\ntraining coverage %.3f, RMSE %.4f\n", rules.Coverage(rel), rules.RMSE(rel))
}
