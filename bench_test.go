package crr_test

// One benchmark per table and figure of the paper's evaluation (§VI), plus
// the ablation benches DESIGN.md calls out. Each benchmark replays the full
// experiment — data generation, method fits, scoring — at a reduced scale
// (BenchScale) so `go test -bench=.` finishes in minutes; run
// `go run ./cmd/crrbench -exp all` for the full-scale numbers recorded in
// EXPERIMENTS.md.
//
// Reported custom metrics: crr_rmse (the CRR method's error at the largest
// parameter point) and crr_rules (its rule count), so regressions in result
// quality show up next to ns/op.

import (
	"context"
	"os"
	"strconv"
	"testing"

	"github.com/crrlab/crr/internal/experiments"
)

// benchScale shrinks experiment sizes for benchmarking; override with the
// CRR_BENCH_SCALE environment variable (e.g. CRR_BENCH_SCALE=1 for paper
// scale).
func benchScale() float64 {
	if s := os.Getenv("CRR_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 && v <= 1 {
			return v
		}
	}
	return 0.1
}

// runExperiment drives one registry entry as a benchmark body.
func runExperiment(b *testing.B, id string, crrPrefix string) {
	b.Helper()
	e, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	scale := benchScale()
	var rows []experiments.Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = e.Run(context.Background(), scale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(rows) == 0 {
		b.Fatalf("%s produced no rows", id)
	}
	// Surface the CRR method's quality at the last parameter point.
	for i := len(rows) - 1; i >= 0; i-- {
		if crrPrefix != "" && hasPrefix(rows[i].Method, crrPrefix) {
			b.ReportMetric(rows[i].RMSE, "crr_rmse")
			b.ReportMetric(float64(rows[i].Rules), "crr_rules")
			break
		}
	}
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// BenchmarkFig2AirQuality regenerates Figure 2: training/evaluation
// scalability against RegTree, AR, SampLR, MCLR, Forest, DHR, Recur on
// AirQuality.
func BenchmarkFig2AirQuality(b *testing.B) { runExperiment(b, "fig2", "CRR") }

// BenchmarkFig3Electricity regenerates Figure 3 on the Electricity stand-in.
func BenchmarkFig3Electricity(b *testing.B) { runExperiment(b, "fig3", "CRR") }

// BenchmarkFig4Tax regenerates Figure 4 on the relational Tax stand-in.
func BenchmarkFig4Tax(b *testing.B) { runExperiment(b, "fig4", "CRR") }

// BenchmarkFig5InstanceScalability regenerates Figure 5: CRR vs RR with
// F1/F2/F3 on BirdMap.
func BenchmarkFig5InstanceScalability(b *testing.B) { runExperiment(b, "fig5", "CRR-F1") }

// BenchmarkFig6PredicateScalability regenerates Figure 6: |ℙ| sweeps.
func BenchmarkFig6PredicateScalability(b *testing.B) { runExperiment(b, "fig6", "CRR-F1") }

// BenchmarkFig7ColumnScalability regenerates Figure 7: target-column sweeps.
func BenchmarkFig7ColumnScalability(b *testing.B) { runExperiment(b, "fig7", "CRR") }

// BenchmarkFig8BiasSensitivity regenerates Figure 8: the ρ_M study.
func BenchmarkFig8BiasSensitivity(b *testing.B) { runExperiment(b, "fig8", "CRR") }

// BenchmarkTable3PredicateGenerators regenerates Table III: expert vs binary
// vs random predicate generation.
func BenchmarkTable3PredicateGenerators(b *testing.B) { runExperiment(b, "tab3", "") }

// BenchmarkTable4ConjunctionOrdering regenerates Table IV: decreasing vs
// increasing vs random ind(C) order.
func BenchmarkTable4ConjunctionOrdering(b *testing.B) { runExperiment(b, "tab4", "") }

// BenchmarkFig9RuleCompaction regenerates Figure 9: rule counts of RegTree,
// RegTree+Compaction and CRR searching for F1/F2/F3.
func BenchmarkFig9RuleCompaction(b *testing.B) { runExperiment(b, "fig9", "CRRSearch") }

// BenchmarkFig10Imputation regenerates Figure 10: imputation with and
// without compaction.
func BenchmarkFig10Imputation(b *testing.B) { runExperiment(b, "fig10", "CRRSearch") }

// BenchmarkAblationSharing isolates model sharing (Algorithm 1 Lines 7–10)
// on and off — the paper's core mechanism.
func BenchmarkAblationSharing(b *testing.B) { runExperiment(b, "ablation-sharing", "") }

// BenchmarkAblationDelta0 compares the δ0 midpoint shift (Proposition 6)
// against a least-squares shift.
func BenchmarkAblationDelta0(b *testing.B) { runExperiment(b, "ablation-delta0", "") }

// BenchmarkAblationFuse measures eager shared-rule fusion on/off.
func BenchmarkAblationFuse(b *testing.B) { runExperiment(b, "ablation-fuse", "") }

// BenchmarkAblationPrune measures §VII post-pruning of over-refined rules.
func BenchmarkAblationPrune(b *testing.B) { runExperiment(b, "ablation-prune", "") }

// BenchmarkExtraBirdMap regenerates the tech-report Fig. 2-style comparison
// on BirdMap.
func BenchmarkExtraBirdMap(b *testing.B) { runExperiment(b, "extra-birdmap", "CRR") }

// BenchmarkExtraAbalone regenerates the tech-report Fig. 4-style comparison
// on Abalone.
func BenchmarkExtraAbalone(b *testing.B) { runExperiment(b, "extra-abalone", "CRR") }
