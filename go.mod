module github.com/crrlab/crr

go 1.22
